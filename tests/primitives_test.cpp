// Tests for the extra collective primitives (all-gather, reduce-scatter,
// broadcast), communication-precision support, diurnal workloads, and the
// extended GPU presets.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/primitives.hpp"
#include "gpusim/gpu_spec.hpp"
#include "llm/model.hpp"
#include "netsim/flownet.hpp"
#include "topology/builders.hpp"
#include "workload/trace.hpp"

namespace hero {
namespace {

using coll::PrimitiveKind;

struct Fixture {
  topo::Graph graph;
  sim::Simulator simulator;
  std::unique_ptr<net::FlowNetwork> network;
  std::unique_ptr<sw::SwitchRegistry> switches;
  std::unique_ptr<coll::CollectiveEngine> engine;

  Fixture() : graph(make_star(4)) {
    network = std::make_unique<net::FlowNetwork>(simulator, graph);
    switches = std::make_unique<sw::SwitchRegistry>(simulator, graph);
    engine = std::make_unique<coll::CollectiveEngine>(*network, *switches);
  }

  static topo::Graph make_star(int n) {
    topo::Graph g;
    const auto sw = g.add_switch("sw", topo::NodeKind::kAccessSwitch, 64);
    for (int i = 0; i < n; ++i) {
      const auto gpu = g.add_gpu("g" + std::to_string(i),
                                 topo::GpuModel::kA100_40, 40 * units::GB, i);
      g.add_edge(gpu, sw, topo::LinkKind::kEthernet, 100 * units::Gbps, 0.0);
    }
    return g;
  }
};

TEST(Primitives, AllGatherRingTiming) {
  Fixture f;
  const coll::Router route = coll::shortest_path_router(f.graph);
  auto plan = coll::make_ring_primitive(PrimitiveKind::kAllGather,
                                        f.graph.gpus(), 4.0 * units::MB,
                                        route);
  Time latency = -1;
  coll::run_primitive(*f.engine, std::move(plan), [&](Time t) {
    latency = t;
  });
  f.simulator.run();
  // (P-1)=3 steps of 1MB chunks over 2-hop star paths: 3 * 2 * 80us.
  EXPECT_NEAR(raw(latency),
              raw(3.0 * 2.0 * 80.0 * units::us),
              raw(2.0 * units::us));
}

TEST(Primitives, ReduceScatterEqualsAllGatherOnWire) {
  Fixture f;
  const coll::Router route = coll::shortest_path_router(f.graph);
  Time ag = -1, rs = -1;
  coll::run_primitive(
      *f.engine,
      coll::make_ring_primitive(PrimitiveKind::kAllGather, f.graph.gpus(),
                                4.0 * units::MB, route),
      [&](Time t) { ag = t; });
  f.simulator.run();
  coll::run_primitive(
      *f.engine,
      coll::make_ring_primitive(PrimitiveKind::kReduceScatter,
                                f.graph.gpus(), 4.0 * units::MB, route),
      [&](Time t) { rs = t; });
  f.simulator.run();
  EXPECT_NEAR(raw(ag), raw(rs), 1e-9);
}

TEST(Primitives, BroadcastWaitsForSlowestReceiver) {
  Fixture f;
  const coll::Router route = coll::shortest_path_router(f.graph);
  auto plan = coll::make_broadcast_plan(f.graph.gpus(), 1.0 * units::MB,
                                        route);
  Time latency = -1;
  coll::run_primitive(*f.engine, std::move(plan), [&](Time t) {
    latency = t;
  });
  f.simulator.run();
  // Three concurrent 1MB sends share the root's uplink: first hop 3x80us,
  // then distinct downlinks.
  EXPECT_GT(latency, 160.0 * units::us);
}

TEST(Primitives, DegenerateCasesCompleteImmediately) {
  Fixture f;
  const coll::Router route = coll::shortest_path_router(f.graph);
  Time latency = -1;
  coll::run_primitive(
      *f.engine,
      coll::make_ring_primitive(PrimitiveKind::kAllGather,
                                {f.graph.gpus()[0]}, units::MB, route),
      [&](Time t) { latency = t; });
  f.simulator.run();
  EXPECT_DOUBLE_EQ(raw(latency), raw(0.0));
}

TEST(Primitives, RingBuilderRejectsBroadcast) {
  Fixture f;
  const coll::Router route = coll::shortest_path_router(f.graph);
  EXPECT_THROW(coll::make_ring_primitive(PrimitiveKind::kBroadcast,
                                         f.graph.gpus(), 1.0, route),
               std::invalid_argument);
}

TEST(Primitives, CostModels) {
  // All-gather: (P-1) * (bytes/P) / B.
  EXPECT_NEAR(raw(coll::all_gather_latency(4, 8.0 * units::MB, 100.0 * units::Gbps)),
              raw(3.0 * 2.0 * units::MB / 12.5e9),
              1e-12);
  EXPECT_DOUBLE_EQ(raw(coll::all_gather_latency(1, units::MB, 1e9)), raw(0.0));
  // Sequence-parallel pair == all-reduce wire cost (Eq. 11 equivalence).
  const Time pair = coll::sequence_parallel_pair_latency(
      4, 8.0 * units::MB, 100.0 * units::Gbps);
  const Time ar = coll::ring_all_reduce_latency(4, 8.0 * units::MB,
                                                100.0 * units::Gbps);
  EXPECT_NEAR(raw(pair), raw(ar), 1e-12);
}

TEST(Primitives, KindNames) {
  EXPECT_STREQ(coll::to_string(PrimitiveKind::kAllGather), "all-gather");
  EXPECT_STREQ(coll::to_string(PrimitiveKind::kBroadcast), "broadcast");
}

// --- communication precision ---

TEST(CommPrecision, Int8HalvesSyncVolume) {
  const llm::ModelConfig fp16 = llm::opt_66b();
  const llm::ModelConfig int8 = fp16.with_int8_comm();
  EXPECT_DOUBLE_EQ(raw(int8.sync_volume_per_step(1000)),
                   raw(0.5 * fp16.sync_volume_per_step(1000)));
  // Weights and KV cache stay at the compute precision.
  EXPECT_DOUBLE_EQ(raw(int8.param_bytes()), raw(fp16.param_bytes()));
  EXPECT_DOUBLE_EQ(raw(int8.kv_bytes_per_token()),
                   raw(fp16.kv_bytes_per_token()));
}

// --- GPU presets ---

TEST(GpuPresets, H100AndL4) {
  const gpu::GpuSpec h100 = gpu::spec_of(topo::GpuModel::kH100_80);
  EXPECT_EQ(h100.name, "H100-80GB");
  EXPECT_GT(h100.flops(), gpu::spec_of(topo::GpuModel::kA100_80).flops());
  const gpu::GpuSpec l4 = gpu::spec_of(topo::GpuModel::kL4_24);
  EXPECT_DOUBLE_EQ(raw(l4.memory), raw(24.0 * units::GB));
  EXPECT_STREQ(topo::to_string(topo::GpuModel::kH100_80), "H100-80GB");
}

// --- diurnal workload ---

TEST(Diurnal, PreservesMeanRate) {
  wl::DiurnalOptions opts;
  opts.base.rate = 10.0;
  opts.base.count = 8000;
  opts.period = 100.0;
  opts.amplitude = 0.6;
  const wl::Trace t = wl::generate_diurnal_trace(opts);
  EXPECT_NEAR(raw(wl::summarize(t).mean_rate), raw(10.0), 1.0);
}

TEST(Diurnal, RateOscillatesWithPeriod) {
  wl::DiurnalOptions opts;
  opts.base.rate = 50.0;
  opts.base.count = 20000;
  opts.period = 100.0;
  opts.amplitude = 0.8;
  const wl::Trace t = wl::generate_diurnal_trace(opts);
  // Count arrivals in the first vs second half of each cycle: the sine's
  // positive half must carry clearly more traffic.
  std::size_t first_half = 0, second_half = 0;
  for (const wl::Request& r : t) {
    const double phase =
        std::fmod(raw(r.arrival), raw(opts.period)) / raw(opts.period);
    (phase < 0.5 ? first_half : second_half) += 1;
  }
  EXPECT_GT(first_half, second_half * 1.5);
}

TEST(Diurnal, Validation) {
  wl::DiurnalOptions opts;
  opts.amplitude = 1.5;
  EXPECT_THROW(wl::generate_diurnal_trace(opts), std::invalid_argument);
  opts.amplitude = 0.5;
  opts.period = 0.0;
  EXPECT_THROW(wl::generate_diurnal_trace(opts), std::invalid_argument);
}

TEST(Diurnal, DeterministicForSeed) {
  wl::DiurnalOptions opts;
  opts.base.count = 100;
  const wl::Trace a = wl::generate_diurnal_trace(opts);
  const wl::Trace b = wl::generate_diurnal_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw(a[i].arrival), raw(b[i].arrival));
  }
}

}  // namespace
}  // namespace hero
