// Tests for the serving cluster simulator: request lifecycle, continuous
// batching, KV-memory-gated admission, and metric accounting.
#include <gtest/gtest.h>

#include "core/heroserve.hpp"

namespace hero::serve {
namespace {

/// A ready-to-serve HeroServe deployment on the testbed.
struct ServeFixture {
  topo::Graph graph = topo::make_testbed();
  llm::ModelConfig model = llm::opt_66b();
  planner::PlanResult plan;
  sim::Simulator simulator;
  std::unique_ptr<net::FlowNetwork> network;
  std::unique_ptr<sw::SwitchRegistry> switches;
  std::unique_ptr<coll::CollectiveEngine> engine;
  std::unique_ptr<coll::CommScheduler> scheduler;

  explicit ServeFixture(bool hero = true) {
    planner::PlannerInputs in;
    in.graph = &graph;
    in.model = model;
    in.latency = &fitted_model(model);
    in.batch_q = 8;
    in.k_in = 2000;
    in.k_in2 = 600000;
    in.k_out = 1200;
    in.arrival_rate = 1.0;
    in.t_sla_prefill = 2.5;
    in.t_sla_decode = 0.15;
    in.heterogeneous = hero;
    plan = planner::OfflinePlanner(in).plan();
    EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;

    network = std::make_unique<net::FlowNetwork>(simulator, graph);
    switches = std::make_unique<sw::SwitchRegistry>(simulator, graph);
    engine = std::make_unique<coll::CollectiveEngine>(*network, *switches);
    if (hero) {
      scheduler = std::make_unique<online::HeroCommScheduler>(*network);
    } else {
      scheduler = std::make_unique<baselines::StaticCommScheduler>(
          *network, baselines::BaselineKind::kDistServe);
    }
  }

  ServingOptions options() const {
    ServingOptions opts;
    opts.model = model;
    opts.sla_ttft = 2.5;
    opts.sla_tpot = 0.15;
    return opts;
  }

  wl::Trace trace(double rate, std::size_t count,
                  std::uint64_t seed = 3) const {
    wl::TraceOptions w;
    w.rate = rate;
    w.count = count;
    w.lengths = wl::sharegpt_lengths();
    w.seed = seed;
    return wl::generate_trace(w);
  }
};

TEST(ClusterSim, AllRequestsCompleteAtLowRate) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(0.5, 20));
  EXPECT_EQ(report.submitted, 20u);
  EXPECT_EQ(report.completed, 20u);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GT(report.requests_per_second, 0.0);
}

TEST(ClusterSim, MetricsAreConsistent) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(0.5, 15));
  EXPECT_EQ(report.ttft.count(), report.completed);
  EXPECT_GT(report.ttft.quantile(0.0), 0.0);   // TTFT strictly positive
  EXPECT_GT(report.tpot.quantile(0.0), 0.0);
  EXPECT_GE(report.sla_attainment, 0.0);
  EXPECT_LE(report.sla_attainment, 1.0);
  EXPECT_GE(report.kv_utilization_peak, report.kv_utilization_avg);
  EXPECT_LE(report.kv_utilization_peak, 1.0 + 1e-9);
  EXPECT_GT(report.collectives, 0u);
  EXPECT_EQ(report.gpus_used, f.plan.prefill.all_gpus().size() +
                                  f.plan.decode.all_gpus().size());
  EXPECT_NEAR(raw(report.per_gpu_goodput),
              raw(report.requests_per_second / report.gpus_used),
              1e-12);
}

TEST(ClusterSim, LowRateMeetsSla) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(0.3, 15));
  EXPECT_GE(report.sla_attainment, 0.9);
  EXPECT_LE(report.ttft.p90(), 2.5);
  EXPECT_LE(report.tpot.p90(), 0.15);
}

TEST(ClusterSim, OverloadDegradesTtftNotTpot) {
  // TTFT queues under overload; TPOT stays near the iteration time.
  ServeFixture lo;
  ClusterSim slo(*lo.network, *lo.engine, *lo.scheduler, lo.plan,
                 lo.options());
  lo.scheduler->start();
  const ServingReport rlo = slo.run(lo.trace(0.3, 20));

  ServeFixture hi;
  ClusterSim shi(*hi.network, *hi.engine, *hi.scheduler, hi.plan,
                 hi.options());
  hi.scheduler->start();
  const ServingReport rhi = shi.run(hi.trace(25.0, 40));

  EXPECT_GT(rhi.ttft.p90(), 2.0 * rlo.ttft.p90());
  EXPECT_LT(rhi.tpot.p90(), 3.0 * rlo.tpot.p90());
  EXPECT_LT(rhi.sla_attainment, rlo.sla_attainment);
}

TEST(ClusterSim, KvMemoryGatesAdmission) {
  // Shrink decode memory to nearly nothing: requests must queue for KV
  // space, serialize through decode, and utilization must peak near 1.
  ServeFixture f;
  for (topo::NodeId id : f.plan.decode.all_gpus()) {
    const Bytes weights =
        f.model.param_bytes() / f.plan.decode.parallel.gpus();
    // Room for ~2 concurrent requests across the whole cluster.
    f.graph.node(id).gpu.memory_free =
        weights + 2.5 * f.model.kv_bytes_per_token() * 600 /
                      f.plan.decode.parallel.gpus();
  }
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(2.0, 12));
  EXPECT_EQ(report.completed, 12u);
  EXPECT_GT(report.kv_utilization_peak, 0.5);
}

TEST(ClusterSim, InfeasiblePlanRejected) {
  ServeFixture f;
  planner::PlanResult bad;
  bad.feasible = false;
  EXPECT_THROW(ClusterSim(*f.network, *f.engine, *f.scheduler, bad,
                          f.options()),
               std::invalid_argument);
}

TEST(ClusterSim, DeterministicForSeed) {
  auto run_once = [] {
    ServeFixture f;
    ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan,
                   f.options());
    f.scheduler->start();
    return sim.run(f.trace(0.8, 15));
  };
  const ServingReport a = run_once();
  const ServingReport b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(raw(a.makespan), raw(b.makespan));
  EXPECT_DOUBLE_EQ(a.ttft.p90(), b.ttft.p90());
}

TEST(ClusterSim, SingleTokenRequestsFinishWithoutDecode) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  wl::Trace trace;
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.push_back(wl::Request{i, 0.1 * static_cast<double>(i), 256, 1});
  }
  const ServingReport report = sim.run(trace);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(report.tpot.count(), 0u);  // no decode phase
  EXPECT_EQ(report.sla_attainment, 1.0);
}

TEST(ClusterSim, BaselineSchedulerAlsoServes) {
  ServeFixture f(/*hero=*/false);
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  const ServingReport report = sim.run(f.trace(0.5, 10));
  EXPECT_EQ(report.completed, 10u);
}

}  // namespace
}  // namespace hero::serve
