// Tests for the serving cluster simulator: request lifecycle, continuous
// batching, KV-memory-gated admission, and metric accounting.
#include <gtest/gtest.h>

#include <map>

#include "core/heroserve.hpp"

namespace hero::serve {
namespace {

/// A ready-to-serve HeroServe deployment on the testbed.
struct ServeFixture {
  topo::Graph graph = topo::make_testbed();
  llm::ModelConfig model = llm::opt_66b();
  planner::PlanResult plan;
  sim::Simulator simulator;
  std::unique_ptr<net::FlowNetwork> network;
  std::unique_ptr<sw::SwitchRegistry> switches;
  std::unique_ptr<coll::CollectiveEngine> engine;
  std::unique_ptr<coll::CommScheduler> scheduler;

  explicit ServeFixture(bool hero = true) {
    planner::PlannerInputs in;
    in.graph = &graph;
    in.model = model;
    in.latency = &fitted_model(model);
    in.batch_q = 8;
    in.k_in = 2000;
    in.k_in2 = 600000;
    in.k_out = 1200;
    in.arrival_rate = 1.0;
    in.t_sla_prefill = 2.5;
    in.t_sla_decode = 0.15;
    in.heterogeneous = hero;
    plan = planner::OfflinePlanner(in).plan();
    EXPECT_TRUE(plan.feasible) << plan.infeasible_reason;

    network = std::make_unique<net::FlowNetwork>(simulator, graph);
    switches = std::make_unique<sw::SwitchRegistry>(simulator, graph);
    engine = std::make_unique<coll::CollectiveEngine>(*network, *switches);
    if (hero) {
      scheduler = std::make_unique<online::HeroCommScheduler>(*network);
    } else {
      scheduler = std::make_unique<baselines::StaticCommScheduler>(
          *network, baselines::BaselineKind::kDistServe);
    }
  }

  ServingOptions options() const {
    ServingOptions opts;
    opts.model = model;
    opts.sla_ttft = 2.5;
    opts.sla_tpot = 0.15;
    return opts;
  }

  wl::Trace trace(double rate, std::size_t count,
                  std::uint64_t seed = 3) const {
    wl::TraceOptions w;
    w.rate = rate;
    w.count = count;
    w.lengths = wl::sharegpt_lengths();
    w.seed = seed;
    return wl::generate_trace(w);
  }
};

TEST(ClusterSim, AllRequestsCompleteAtLowRate) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(0.5, 20));
  EXPECT_EQ(report.submitted, 20u);
  EXPECT_EQ(report.completed, 20u);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GT(report.requests_per_second, 0.0);
}

TEST(ClusterSim, MetricsAreConsistent) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(0.5, 15));
  EXPECT_EQ(report.ttft.count(), report.completed);
  EXPECT_GT(report.ttft.quantile(0.0), 0.0);   // TTFT strictly positive
  EXPECT_GT(report.tpot.quantile(0.0), 0.0);
  EXPECT_GE(report.sla_attainment, 0.0);
  EXPECT_LE(report.sla_attainment, 1.0);
  EXPECT_GE(report.kv_utilization_peak, report.kv_utilization_avg);
  EXPECT_LE(report.kv_utilization_peak, 1.0 + 1e-9);
  EXPECT_GT(report.collectives, 0u);
  EXPECT_EQ(report.gpus_used, f.plan.prefill.all_gpus().size() +
                                  f.plan.decode.all_gpus().size());
  EXPECT_NEAR(raw(report.per_gpu_goodput),
              raw(report.requests_per_second / report.gpus_used),
              1e-12);
}

TEST(ClusterSim, LowRateMeetsSla) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(0.3, 15));
  EXPECT_GE(report.sla_attainment, 0.9);
  EXPECT_LE(report.ttft.p90(), 2.5);
  EXPECT_LE(report.tpot.p90(), 0.15);
}

TEST(ClusterSim, OverloadDegradesTtftNotTpot) {
  // TTFT queues under overload; TPOT stays near the iteration time.
  ServeFixture lo;
  ClusterSim slo(*lo.network, *lo.engine, *lo.scheduler, lo.plan,
                 lo.options());
  lo.scheduler->start();
  const ServingReport rlo = slo.run(lo.trace(0.3, 20));

  ServeFixture hi;
  ClusterSim shi(*hi.network, *hi.engine, *hi.scheduler, hi.plan,
                 hi.options());
  hi.scheduler->start();
  const ServingReport rhi = shi.run(hi.trace(25.0, 40));

  EXPECT_GT(rhi.ttft.p90(), 2.0 * rlo.ttft.p90());
  EXPECT_LT(rhi.tpot.p90(), 3.0 * rlo.tpot.p90());
  EXPECT_LT(rhi.sla_attainment, rlo.sla_attainment);
}

TEST(ClusterSim, KvMemoryGatesAdmission) {
  // Shrink decode memory to nearly nothing: requests must queue for KV
  // space, serialize through decode, and utilization must peak near 1.
  ServeFixture f;
  for (topo::NodeId id : f.plan.decode.all_gpus()) {
    const Bytes weights =
        f.model.param_bytes() / f.plan.decode.parallel.gpus();
    // Room for ~2 concurrent requests across the whole cluster.
    f.graph.node(id).gpu.memory_free =
        weights + 2.5 * f.model.kv_bytes_per_token() * 600 /
                      f.plan.decode.parallel.gpus();
  }
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  const ServingReport report = sim.run(f.trace(2.0, 12));
  EXPECT_EQ(report.completed, 12u);
  EXPECT_GT(report.kv_utilization_peak, 0.5);
}

TEST(ClusterSim, InfeasiblePlanRejected) {
  ServeFixture f;
  planner::PlanResult bad;
  bad.feasible = false;
  EXPECT_THROW(ClusterSim(*f.network, *f.engine, *f.scheduler, bad,
                          f.options()),
               std::invalid_argument);
}

TEST(ClusterSim, DeterministicForSeed) {
  auto run_once = [] {
    ServeFixture f;
    ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan,
                   f.options());
    f.scheduler->start();
    return sim.run(f.trace(0.8, 15));
  };
  const ServingReport a = run_once();
  const ServingReport b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(raw(a.makespan), raw(b.makespan));
  EXPECT_DOUBLE_EQ(a.ttft.p90(), b.ttft.p90());
}

TEST(ClusterSim, SingleTokenRequestsFinishWithoutDecode) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  f.scheduler->start();
  wl::Trace trace;
  for (std::uint64_t i = 0; i < 5; ++i) {
    trace.push_back(wl::Request{i, 0.1 * static_cast<double>(i), 256, 1});
  }
  const ServingReport report = sim.run(trace);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(report.tpot.count(), 0u);  // no decode phase
  EXPECT_EQ(report.sla_attainment, 1.0);
}

TEST(ClusterSim, BaselineSchedulerAlsoServes) {
  ServeFixture f(/*hero=*/false);
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  const ServingReport report = sim.run(f.trace(0.5, 10));
  EXPECT_EQ(report.completed, 10u);
}

// --- prefix/KV tier ---

TEST(ClusterSim, KvSnapshotReplacesAccessorTrio) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  const KvSnapshot kv = sim.kv();
  EXPECT_GT(kv.budget, 0.0);
  EXPECT_DOUBLE_EQ(raw(kv.used), 0.0);
  EXPECT_DOUBLE_EQ(raw(kv.cached), 0.0);
  EXPECT_DOUBLE_EQ(raw(kv.bytes_per_token), raw(f.model.kv_bytes_per_token()));
  EXPECT_DOUBLE_EQ(raw(kv.free()), raw(kv.budget));
  EXPECT_DOUBLE_EQ(raw(kv.bytes_for_tokens(100)),
                   100.0 * raw(kv.bytes_per_token));
  EXPECT_DOUBLE_EQ(kv.utilization(), 0.0);
}

TEST(ClusterSim, TierDisabledByDefault) {
  ServeFixture f;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, f.options());
  EXPECT_FALSE(sim.prefix_enabled());
  EXPECT_EQ(sim.cached_prefix_tokens(7), 0u);
  const ServingReport report = sim.run(f.trace(0.5, 8));
  EXPECT_EQ(report.completed, 8u);
  EXPECT_EQ(sim.prefix_stats().lookups, 0u);
}

TEST(ClusterSim, TierIsNoOpOnSessionlessTraces) {
  // Enabling the tier must not change a prefix-free run in any observable
  // way: same completions, bitwise-identical timings.
  auto run_once = [](std::size_t block_tokens) {
    ServeFixture f;
    ServingOptions opts = f.options();
    opts.prefix_block_tokens = block_tokens;
    ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, opts);
    f.scheduler->start();
    return sim.run(f.trace(0.8, 15));
  };
  const ServingReport off = run_once(0);
  const ServingReport on = run_once(128);
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_DOUBLE_EQ(raw(on.makespan), raw(off.makespan));
  EXPECT_DOUBLE_EQ(on.ttft.p90(), off.ttft.p90());
  EXPECT_DOUBLE_EQ(on.tpot.p90(), off.tpot.p90());
  EXPECT_DOUBLE_EQ(on.kv_utilization_avg, off.kv_utilization_avg);
}

wl::Trace multiturn_trace(std::size_t count, std::uint64_t seed = 5) {
  wl::MultiturnOptions mt;
  mt.base.rate = 0.6;
  mt.base.count = count;
  mt.base.lengths = wl::sharegpt_lengths();
  mt.base.seed = seed;
  mt.mean_turns = 4.0;
  mt.think_mean = 60.0;
  return wl::generate_multiturn_trace(mt);
}

TEST(ClusterSim, PrefixReuseSkipsPrefillWork) {
  ServeFixture f;
  ServingOptions opts = f.options();
  opts.prefix_block_tokens = 128;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, opts);
  f.scheduler->start();
  const wl::Trace trace = multiturn_trace(30);
  const ServingReport report = sim.run(trace);
  EXPECT_EQ(report.completed, trace.size());
  const PrefixStats& stats = sim.prefix_stats();
  // Follow-up turns arrive after their session's previous turn retired and
  // published its context, so some must hit the local cache.
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.reused_tokens, 0u);
  EXPECT_GT(stats.published_tokens, 0u);
  EXPECT_LE(stats.hits + stats.recomputes, stats.lookups);
}

TEST(ClusterSim, PrefixReuseImprovesTtftOnMultiturn) {
  auto run_once = [](std::size_t block_tokens) {
    ServeFixture f;
    ServingOptions opts = f.options();
    opts.prefix_block_tokens = block_tokens;
    ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, opts);
    f.scheduler->start();
    return sim.run(multiturn_trace(30));
  };
  const ServingReport blind = run_once(0);
  const ServingReport reuse = run_once(128);
  EXPECT_EQ(reuse.completed, blind.completed);
  // Reused blocks skip prefill compute: mean TTFT cannot get worse and a
  // ~4-turn chat workload must show a real win.
  EXPECT_LT(reuse.ttft.mean(), blind.ttft.mean());
}

TEST(ClusterSim, ChangeHookMirrorsCoverage) {
  ServeFixture f;
  ServingOptions opts = f.options();
  opts.prefix_block_tokens = 128;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, opts);
  f.scheduler->start();
  std::map<std::uint64_t, std::size_t> mirror;
  sim.set_prefix_change_hook(
      [&mirror](std::uint64_t stream, std::size_t tokens) {
        if (tokens == 0) {
          mirror.erase(stream);
        } else {
          mirror[stream] = tokens;
        }
      });
  const ServingReport report = sim.run(multiturn_trace(20));
  EXPECT_GT(report.completed, 0u);
  // The mirror agrees with the cache for every stream it tracks.
  EXPECT_FALSE(mirror.empty());
  for (const auto& [stream, tokens] : mirror) {
    EXPECT_EQ(sim.cached_prefix_tokens(stream), tokens);
  }
}

TEST(ClusterSim, RetirePrefixCacheSilencesHookAndDropsCoverage) {
  ServeFixture f;
  ServingOptions opts = f.options();
  opts.prefix_block_tokens = 128;
  ClusterSim sim(*f.network, *f.engine, *f.scheduler, f.plan, opts);
  f.scheduler->start();
  std::size_t calls_after_retire = 0;
  bool retired = false;
  sim.set_prefix_change_hook(
      [&](std::uint64_t, std::size_t) { calls_after_retire += retired; });
  const ServingReport report = sim.run(multiturn_trace(15));
  EXPECT_GT(report.completed, 0u);
  retired = true;
  sim.retire_prefix_cache();
  EXPECT_EQ(calls_after_retire, 0u);
  EXPECT_DOUBLE_EQ(raw(sim.kv().cached), 0.0);
  // Adoption after retirement is refused.
  sim.adopt_prefix(12345, 256);
  EXPECT_EQ(sim.cached_prefix_tokens(12345), 0u);
}

}  // namespace
}  // namespace hero::serve
