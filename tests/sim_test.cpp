// Tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <algorithm>

#include "netsim/sim.hpp"

namespace hero::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(raw(s.now()), raw(0.0));
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(2.0, [&] { order.push_back(2); });
  s.schedule(1.0, [&] { order.push_back(1); });
  s.schedule(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(raw(s.now()), raw(3.0));
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  Simulator s;
  Time fired = -1;
  s.schedule(5.0, [&] {
    s.schedule_in(2.5, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(raw(fired), raw(7.5));
}

TEST(Simulator, PastEventThrows) {
  Simulator s;
  s.schedule(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule(1.0, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator s;
  s.cancel(kInvalidEvent);
  s.cancel(12345);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(2.0, [&] { ++count; });
  s.schedule(5.0, [&] { ++count; });
  s.run_until(3.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(raw(s.now()), raw(3.0));
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_in(1.0, recurse);
  };
  s.schedule(0.0, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(raw(s.now()), raw(9.0));
}

TEST(Simulator, PendingEventsTracksCancellations) {
  Simulator s;
  const EventId a = s.schedule(1.0, [] {});
  s.schedule(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, ScheduledAndCancelledCounters) {
  Simulator s;
  const EventId a = s.schedule(1.0, [] {});
  s.schedule(2.0, [] {});
  EXPECT_EQ(s.scheduled_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.cancelled_events(), 1u);
  // Double-cancel and stale cancels are no-ops, not double counts.
  s.cancel(a);
  EXPECT_EQ(s.cancelled_events(), 1u);
  s.run();
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Simulator, CancelAfterExecutionIsNoop) {
  Simulator s;
  const EventId id = s.schedule(1.0, [] {});
  s.run();
  s.cancel(id);  // slot may be reused; the generation stamp protects it
  EXPECT_EQ(s.cancelled_events(), 0u);
}

TEST(Simulator, StaleIdDoesNotCancelRecycledSlot) {
  Simulator s;
  const EventId first = s.schedule(1.0, [] {});
  s.run();
  // The pool slot of `first` is free; this event will likely reuse it.
  bool ran = false;
  s.schedule(2.0, [&] { ran = true; });
  s.cancel(first);  // stale generation: must NOT hit the new occupant
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.cancelled_events(), 0u);
}

TEST(Simulator, EqualTimeFifoSurvivesInterleavedCancels) {
  Simulator s;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(s.schedule(1.0, [&order, i] { order.push_back(i); }));
  }
  // Cancelling the odd events must not disturb the even events' FIFO order
  // (heap removals swap nodes around; the insertion seq keeps order).
  for (int i = 1; i < 10; i += 2) s.cancel(ids[i]);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(Simulator, PoolReuseKeepsFifoOrder) {
  Simulator s;
  // Burn and free a batch of slots, then schedule a same-time batch that
  // reuses them: execution must still follow insertion order.
  std::vector<EventId> burn;
  for (int i = 0; i < 8; ++i) burn.push_back(s.schedule(1.0, [] {}));
  for (const EventId id : burn) s.cancel(id);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    s.schedule(2.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

/// Randomized cancel/reschedule stress against a reference model: schedule
/// events with colliding times, cancel a scripted subset, and require the
/// indexed heap to fire exactly the reference's (time, insertion-seq) order.
TEST(Simulator, CancelStressMatchesReferenceModel) {
  Simulator s;
  struct Ref {
    double at = 0.0;
    int idx = 0;
  };
  std::vector<Ref> expected;
  std::vector<int> fired;
  std::vector<EventId> ids;
  std::uint64_t lcg = 42;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>((lcg >> 33) % 50);  // many equal times
  };
  std::vector<bool> cancelled(300, false);
  for (int i = 0; i < 300; ++i) {
    const double at = next();
    ids.push_back(s.schedule(at, [&fired, i] { fired.push_back(i); }));
    expected.push_back({at, i});
  }
  for (int i = 0; i < 300; i += 3) {
    s.cancel(ids[i]);
    cancelled[i] = true;
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.at < b.at; });
  std::vector<int> want;
  for (const Ref& r : expected) {
    if (!cancelled[r.idx]) want.push_back(r.idx);
  }
  s.run();
  EXPECT_EQ(fired, want);
  EXPECT_EQ(s.executed_events(), want.size());
  EXPECT_EQ(s.cancelled_events(), 100u);
}

}  // namespace
}  // namespace hero::sim
