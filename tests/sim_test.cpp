// Tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include "netsim/sim.hpp"

namespace hero::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(2.0, [&] { order.push_back(2); });
  s.schedule(1.0, [&] { order.push_back(1); });
  s.schedule(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInUsesRelativeDelay) {
  Simulator s;
  Time fired = -1;
  s.schedule(5.0, [&] {
    s.schedule_in(2.5, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired, 7.5);
}

TEST(Simulator, PastEventThrows) {
  Simulator s;
  s.schedule(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule(1.0, [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed_events(), 0u);
}

TEST(Simulator, CancelInvalidIsNoop) {
  Simulator s;
  s.cancel(kInvalidEvent);
  s.cancel(12345);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(2.0, [&] { ++count; });
  s.schedule(5.0, [&] { ++count; });
  s.run_until(3.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_in(1.0, recurse);
  };
  s.schedule(0.0, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(s.now(), 9.0);
}

TEST(Simulator, PendingEventsTracksCancellations) {
  Simulator s;
  const EventId a = s.schedule(1.0, [] {});
  s.schedule(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

}  // namespace
}  // namespace hero::sim
