// Tests for the programmable-switch data plane (aggregator pool) and the
// admission/timing agent.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "switchsim/switch_agent.hpp"
#include "topology/builders.hpp"

namespace hero::sw {
namespace {

TEST(AggregatorPool, InstallContributeComplete) {
  AggregatorPool pool(4, 8);
  const AggregatorKey key{1, 0};
  ASSERT_TRUE(pool.install(key, 2));
  EXPECT_EQ(pool.slots_in_use(), 1u);

  std::vector<std::int32_t> v{1, 2, 3};
  EXPECT_EQ(pool.contribute(key, 0, v), ContributeResult::kAccepted);
  EXPECT_EQ(pool.contribute(key, 1, v), ContributeResult::kCompleted);
  const auto result = pool.read(key);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ((*result)[0], 2);
  EXPECT_EQ((*result)[2], 6);
  EXPECT_EQ((*result)[3], 0);  // zero padded
}

TEST(AggregatorPool, DuplicateContributionDropped) {
  AggregatorPool pool(4, 4);
  const AggregatorKey key{1, 0};
  pool.install(key, 2);
  std::vector<std::int32_t> v{5};
  pool.contribute(key, 0, v);
  EXPECT_EQ(pool.contribute(key, 0, v), ContributeResult::kDuplicate);
  EXPECT_EQ(pool.duplicates_dropped, 1u);
  EXPECT_EQ((*pool.read(key))[0], 5);  // not double counted
}

TEST(AggregatorPool, ExactMatchMissWhenNotInstalled) {
  AggregatorPool pool(4, 4);
  std::vector<std::int32_t> v{1};
  EXPECT_EQ(pool.contribute(AggregatorKey{9, 9}, 0, v),
            ContributeResult::kNoSlot);
  EXPECT_EQ(pool.packets_missed, 1u);
}

TEST(AggregatorPool, PoolExhaustion) {
  AggregatorPool pool(2, 4);
  EXPECT_TRUE(pool.install(AggregatorKey{1, 0}, 2));
  EXPECT_TRUE(pool.install(AggregatorKey{1, 1}, 2));
  EXPECT_FALSE(pool.install(AggregatorKey{1, 2}, 2));
  pool.recycle(AggregatorKey{1, 0});
  EXPECT_TRUE(pool.install(AggregatorKey{1, 2}, 2));
}

TEST(AggregatorPool, InstallIsIdempotent) {
  AggregatorPool pool(1, 4);
  EXPECT_TRUE(pool.install(AggregatorKey{1, 0}, 2));
  EXPECT_TRUE(pool.install(AggregatorKey{1, 0}, 2));
  EXPECT_EQ(pool.slots_in_use(), 1u);
}

TEST(AggregatorPool, ValidatesArguments) {
  AggregatorPool pool(2, 4);
  EXPECT_THROW(pool.install(AggregatorKey{1, 0}, 0), std::invalid_argument);
  pool.install(AggregatorKey{1, 0}, 2);
  std::vector<std::int32_t> wide(5, 0);
  EXPECT_THROW(pool.contribute(AggregatorKey{1, 0}, 0, wide),
               std::invalid_argument);
  std::vector<std::int32_t> v{1};
  EXPECT_THROW(pool.contribute(AggregatorKey{1, 0}, 7, v),
               std::invalid_argument);
  EXPECT_THROW(AggregatorPool(0, 4), std::invalid_argument);
}

TEST(AggregatorPool, FixedPointAggregationMatchesFloats) {
  // End-to-end data-plane arithmetic: 3 workers' float vectors aggregated
  // in fixed point equal the float sum within quantization error.
  AggregatorPool pool(4, 16);
  const AggregatorKey key{7, 3};
  pool.install(key, 3);
  Rng rng(5);
  std::vector<std::vector<double>> contributions(3);
  std::vector<double> expected(16, 0.0);
  for (WorkerId w = 0; w < 3; ++w) {
    contributions[w].resize(16);
    for (std::size_t i = 0; i < 16; ++i) {
      contributions[w][i] = rng.uniform(-10.0, 10.0);
      expected[i] += contributions[w][i];
    }
    pool.contribute(key, w, encode_vector(contributions[w], pool.format()));
  }
  const auto decoded = pool.read_decoded(key);
  ASSERT_TRUE(decoded.has_value());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR((*decoded)[i], expected[i], 3.0 / pool.format().scale());
  }
}

TEST(AggregatorPool, ReadMissingReturnsNullopt) {
  AggregatorPool pool(2, 4);
  EXPECT_FALSE(pool.read(AggregatorKey{1, 1}).has_value());
  EXPECT_FALSE(pool.read_decoded(AggregatorKey{1, 1}).has_value());
}

// --- SwitchAgent ---

struct AgentFixture {
  sim::Simulator sim;
  SwitchAgent agent{sim, 0, /*total_slots=*/64};
};

TEST(SwitchAgent, GrantWithinCapacity) {
  AgentFixture f;
  bool granted = false;
  EXPECT_EQ(f.agent.reserve(1, 32, true, [&] { granted = true; }),
            Admission::kGranted);
  EXPECT_FALSE(granted);  // grant callback is asynchronous
  f.sim.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(f.agent.slots_in_use(), 32u);
}

TEST(SwitchAgent, SynchronousQueuesWhenFull) {
  AgentFixture f;
  f.agent.reserve(1, 48, true, nullptr);
  bool granted = false;
  EXPECT_EQ(f.agent.reserve(2, 48, true, [&] { granted = true; }),
            Admission::kQueued);
  f.sim.run();
  EXPECT_FALSE(granted);
  EXPECT_EQ(f.agent.queue_depth(), 1u);
  f.agent.release(1);
  f.sim.run();
  EXPECT_TRUE(granted);
  EXPECT_EQ(f.agent.slots_in_use(), 48u);
}

TEST(SwitchAgent, AsynchronousRejectsWhenFull) {
  AgentFixture f;
  f.agent.reserve(1, 64, true, nullptr);
  EXPECT_EQ(f.agent.reserve(2, 1, false, nullptr), Admission::kRejected);
  EXPECT_EQ(f.agent.jobs_rejected, 1u);
}

TEST(SwitchAgent, FifoAdmissionFromQueue) {
  AgentFixture f;
  f.agent.reserve(1, 64, true, nullptr);
  std::vector<int> order;
  f.agent.reserve(2, 32, true, [&] { order.push_back(2); });
  f.agent.reserve(3, 32, true, [&] { order.push_back(3); });
  f.agent.release(1);
  f.sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(SwitchAgent, QueueBlocksLaterArrivalsEvenIfTheyFit) {
  // FIFO: a small job behind a large queued job must not jump the queue.
  AgentFixture f;
  f.agent.reserve(1, 60, true, nullptr);
  bool small_granted = false;
  f.agent.reserve(2, 64, true, nullptr);             // queued
  EXPECT_EQ(f.agent.reserve(3, 2, true, [&] { small_granted = true; }),
            Admission::kQueued);
  f.sim.run();
  EXPECT_FALSE(small_granted);
}

TEST(SwitchAgent, AbandonRemovesQueuedJob) {
  AgentFixture f;
  f.agent.reserve(1, 64, true, nullptr);
  bool granted = false;
  f.agent.reserve(2, 8, true, [&] { granted = true; });
  f.agent.abandon(2);
  f.agent.release(1);
  f.sim.run();
  EXPECT_FALSE(granted);
  EXPECT_EQ(f.agent.queue_depth(), 0u);
}

TEST(SwitchAgent, ReleaseUnknownIsNoop) {
  AgentFixture f;
  f.agent.release(42);
  EXPECT_EQ(f.agent.slots_in_use(), 0u);
}

TEST(SwitchAgent, OversizedRequestClampsToPool) {
  AgentFixture f;
  EXPECT_EQ(f.agent.reserve(1, 1000, true, nullptr), Admission::kGranted);
  EXPECT_EQ(f.agent.slots_in_use(), 64u);
}

TEST(SwitchAgent, DoubleReserveThrows) {
  AgentFixture f;
  f.agent.reserve(1, 8, true, nullptr);
  EXPECT_THROW(f.agent.reserve(1, 8, true, nullptr), std::logic_error);
}

TEST(SwitchAgent, CountersTrackAdmissions) {
  AgentFixture f;
  f.agent.reserve(1, 64, true, nullptr);
  f.agent.reserve(2, 8, true, nullptr);
  f.agent.reserve(3, 8, false, nullptr);
  EXPECT_EQ(f.agent.jobs_granted, 1u);
  EXPECT_EQ(f.agent.jobs_queued, 1u);
  EXPECT_EQ(f.agent.jobs_rejected, 1u);
}

TEST(SwitchRegistry, BuildsAgentsFromTopology) {
  sim::Simulator sim;
  const topo::Graph g = topo::make_testbed();
  SwitchRegistry registry(sim, g);
  SwitchAgent& a = registry.agent(g.find("sw0"));
  EXPECT_EQ(a.slots_total(), 128u);
  // Same node returns the same agent.
  EXPECT_EQ(&registry.agent(g.find("sw0")), &a);
}

TEST(SwitchRegistry, RejectsNonSwitchNodes) {
  sim::Simulator sim;
  const topo::Graph g = topo::make_testbed();
  SwitchRegistry registry(sim, g);
  EXPECT_THROW(registry.agent(g.gpus()[0]), std::invalid_argument);
}

}  // namespace
}  // namespace hero::sw
