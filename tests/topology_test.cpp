// Unit tests for the topology graph and the paper's topology builders.
#include <gtest/gtest.h>

#include "topology/builders.hpp"
#include "topology/graph.hpp"

namespace hero::topo {
namespace {

TEST(Graph, AddNodesAndEdges) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 40 * units::GB, 0);
  const NodeId b = g.add_gpu("b", GpuModel::kV100_32, 32 * units::GB, 0);
  const NodeId s = g.add_switch("s", NodeKind::kAccessSwitch, 64);
  const EdgeId e = g.add_edge(a, b, LinkKind::kNvLink, 600 * units::GBps);
  g.add_edge(a, s, LinkKind::kEthernet, 100 * units::Gbps);

  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.node(a).gpu.model, GpuModel::kA100_40);
  EXPECT_EQ(g.node(b).gpu.server, 0);
  EXPECT_EQ(g.node(s).agg_slots, 64);
  EXPECT_EQ(g.edge(e).kind, LinkKind::kNvLink);
  EXPECT_EQ(g.other_end(e, a), b);
  EXPECT_EQ(g.other_end(e, b), a);
}

TEST(Graph, OtherEndRejectsForeignNode) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 0);
  const NodeId c = g.add_gpu("c", GpuModel::kA100_40, 1, 1);
  const EdgeId e = g.add_edge(a, b, LinkKind::kNvLink, 1.0);
  EXPECT_THROW((void)g.other_end(e, c), std::invalid_argument);
}

TEST(Graph, RejectsBadEdges) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  EXPECT_THROW(g.add_edge(a, a, LinkKind::kNvLink, 1.0),
               std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, 99, LinkKind::kNvLink, 1.0),
               std::out_of_range);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 0);
  EXPECT_THROW(g.add_edge(a, b, LinkKind::kNvLink, 0.0),
               std::invalid_argument);
}

TEST(Graph, AddSwitchRejectsNonSwitchKind) {
  Graph g;
  EXPECT_THROW(g.add_switch("x", NodeKind::kGpu), std::invalid_argument);
}

TEST(Graph, GpusBySwitchesAndServers) {
  Graph g;
  g.add_gpu("g0", GpuModel::kA100_40, 1, 0);
  g.add_gpu("g1", GpuModel::kA100_40, 1, 1);
  g.add_gpu("g2", GpuModel::kA100_40, 1, 1);
  g.add_switch("s", NodeKind::kCoreSwitch);
  g.add_server("ps");

  EXPECT_EQ(g.gpus().size(), 3u);
  EXPECT_EQ(g.switches().size(), 1u);
  const auto by_server = g.gpus_by_server();
  ASSERT_EQ(by_server.size(), 2u);
  EXPECT_EQ(by_server[0].size(), 1u);
  EXPECT_EQ(by_server[1].size(), 2u);
}

TEST(Graph, FindByName) {
  Graph g;
  const NodeId a = g.add_gpu("alpha", GpuModel::kA100_40, 1, 0);
  EXPECT_EQ(g.find("alpha"), a);
  EXPECT_EQ(g.find("nope"), kInvalidNode);
}

TEST(Graph, NeighborsListBothDirections) {
  Graph g;
  const NodeId a = g.add_gpu("a", GpuModel::kA100_40, 1, 0);
  const NodeId b = g.add_gpu("b", GpuModel::kA100_40, 1, 0);
  g.add_edge(a, b, LinkKind::kNvLink, 1.0);
  ASSERT_EQ(g.neighbors(a).size(), 1u);
  EXPECT_EQ(g.neighbors(a)[0].peer, b);
  ASSERT_EQ(g.neighbors(b).size(), 1u);
  EXPECT_EQ(g.neighbors(b)[0].peer, a);
}

TEST(ToString, CoversEnums) {
  EXPECT_STREQ(to_string(NodeKind::kGpu), "gpu");
  EXPECT_STREQ(to_string(NodeKind::kCoreSwitch), "core-switch");
  EXPECT_STREQ(to_string(LinkKind::kNvLink), "nvlink");
  EXPECT_STREQ(to_string(GpuModel::kV100_32), "V100-32GB");
}

// --- builders ---

TEST(Testbed, MatchesFig6Shape) {
  const Graph g = make_testbed();
  // 16 GPUs (4 servers x 4), 2 switches, PS + traffic hosts.
  EXPECT_EQ(g.gpus().size(), 16u);
  EXPECT_EQ(g.switches().size(), 2u);
  EXPECT_NE(g.find("ps"), kInvalidNode);
  EXPECT_NE(g.find("traffic"), kInvalidNode);

  // Two A100 servers, two V100 servers.
  int a100 = 0, v100 = 0;
  for (NodeId id : g.gpus()) {
    if (g.node(id).gpu.model == GpuModel::kA100_40) ++a100;
    if (g.node(id).gpu.model == GpuModel::kV100_32) ++v100;
  }
  EXPECT_EQ(a100, 8);
  EXPECT_EQ(v100, 8);
}

TEST(Testbed, CrossConnectedUplinks) {
  const Graph g = make_testbed();
  const NodeId sw0 = g.find("sw0");
  const NodeId sw1 = g.find("sw1");
  // Each server's GPUs alternate uplink switches (2tracks wiring).
  const auto by_server = g.gpus_by_server();
  for (int server = 0; server < 4; ++server) {
    int to0 = 0, to1 = 0;
    for (NodeId id : by_server[static_cast<std::size_t>(server)]) {
      for (const Adjacency& adj : g.neighbors(id)) {
        if (adj.peer == sw0) ++to0;
        if (adj.peer == sw1) ++to1;
      }
    }
    EXPECT_EQ(to0, 2) << "server " << server;
    EXPECT_EQ(to1, 2) << "server " << server;
  }
}

TEST(Testbed, NvLinkMeshWithinServers) {
  const Graph g = make_testbed();
  int nvlink_edges = 0;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).kind == LinkKind::kNvLink) {
      ++nvlink_edges;
      EXPECT_EQ(g.node(g.edge(e).a).gpu.server,
                g.node(g.edge(e).b).gpu.server);
    }
  }
  // 4 servers x C(4,2) = 24 NVLink edges.
  EXPECT_EQ(nvlink_edges, 24);
}

TEST(Fig2Example, Shape) {
  const Graph g = make_fig2_example();
  EXPECT_EQ(g.gpus().size(), 4u);
  EXPECT_EQ(g.switches().size(), 3u);
  // GN1 uplinks to S3 only (cross wiring) plus NVLink to GN2.
  const NodeId gn1 = g.find("GN1");
  int eth = 0, nv = 0;
  for (const Adjacency& adj : g.neighbors(gn1)) {
    (g.edge(adj.edge).kind == LinkKind::kEthernet ? eth : nv) += 1;
  }
  EXPECT_EQ(eth, 1);
  EXPECT_EQ(nv, 1);
}

TEST(TracksCluster, TwoTracksShape) {
  TracksOptions opts;
  opts.servers = 12;
  opts.gpus_per_server = 8;
  opts.tracks = 2;
  opts.servers_per_pod = 6;
  opts.core_switches = 3;
  const Graph g = make_tracks_cluster(opts);
  EXPECT_EQ(g.gpus().size(), 96u);
  // 2 pods x 2 access + 3 core.
  EXPECT_EQ(g.switches().size(), 7u);
}

TEST(TracksCluster, EightTracksShape) {
  TracksOptions opts;
  opts.servers = 16;
  opts.tracks = 8;
  opts.servers_per_pod = 16;
  opts.core_switches = 4;
  const Graph g = make_tracks_cluster(opts);
  EXPECT_EQ(g.gpus().size(), 128u);
  EXPECT_EQ(g.switches().size(), 12u);  // 8 access + 4 core
}

TEST(TracksCluster, GpuUplinkSpreadAcrossTracks) {
  TracksOptions opts;
  opts.servers = 2;
  opts.gpus_per_server = 8;
  opts.tracks = 2;
  opts.servers_per_pod = 2;
  opts.core_switches = 1;
  const Graph g = make_tracks_cluster(opts);
  const NodeId a0 = g.find("p0a0");
  const NodeId a1 = g.find("p0a1");
  int to0 = 0, to1 = 0;
  for (NodeId id : g.gpus()) {
    for (const Adjacency& adj : g.neighbors(id)) {
      if (adj.peer == a0) ++to0;
      if (adj.peer == a1) ++to1;
    }
  }
  EXPECT_EQ(to0, 8);
  EXPECT_EQ(to1, 8);
}

TEST(TracksCluster, RejectsNonPositiveSizes) {
  TracksOptions opts;
  opts.tracks = 0;
  EXPECT_THROW(make_tracks_cluster(opts), std::invalid_argument);
}

/// Shape property over pod configurations.
class TracksShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TracksShapeTest, NodeAndEdgeCountsConsistent) {
  const auto [servers, tracks, pod] = GetParam();
  TracksOptions opts;
  opts.servers = servers;
  opts.tracks = tracks;
  opts.servers_per_pod = pod;
  opts.gpus_per_server = 4;
  opts.core_switches = 2;
  const Graph g = make_tracks_cluster(opts);
  EXPECT_EQ(g.gpus().size(), static_cast<std::size_t>(servers * 4));
  const int pods = (servers + pod - 1) / pod;
  EXPECT_EQ(g.switches().size(), static_cast<std::size_t>(pods * tracks + 2));
  // Every GPU has exactly one Ethernet uplink + NVLink mesh degree 3.
  for (NodeId id : g.gpus()) {
    int eth = 0, nv = 0;
    for (const Adjacency& adj : g.neighbors(id)) {
      (g.edge(adj.edge).kind == LinkKind::kEthernet ? eth : nv) += 1;
    }
    EXPECT_EQ(eth, 1);
    EXPECT_EQ(nv, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TracksShapeTest,
    ::testing::Values(std::make_tuple(6, 2, 6), std::make_tuple(12, 2, 6),
                      std::make_tuple(16, 8, 16), std::make_tuple(5, 2, 3)));

}  // namespace
}  // namespace hero::topo
