// Tests for the packetized INA transport: numerical correctness of the
// fixed-point data plane under windowing, packet loss, retransmission, and
// shared-pool pressure — plus trace file I/O and the PCIe future-work
// topology mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "switchsim/ina_transport.hpp"
#include "topology/builders.hpp"
#include "topology/paths.hpp"
#include "workload/trace_io.hpp"

namespace hero {
namespace {

// --- InaTransport ---

std::vector<std::vector<double>> random_workers(std::size_t workers,
                                                std::size_t length,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> out(workers);
  for (auto& w : out) {
    w.resize(length);
    for (double& v : w) v = rng.uniform(-5.0, 5.0);
  }
  return out;
}

TEST(InaTransport, LosslessMatchesReference) {
  sw::AggregatorPool pool(64, 16);
  sw::InaTransport transport(pool, 1, random_workers(4, 300, 7));
  const sw::InaTransportStats stats = transport.run();
  ASSERT_TRUE(stats.completed);
  EXPECT_EQ(stats.packets_lost, 0u);
  EXPECT_EQ(stats.retransmissions, 0u);
  const auto ref = transport.reference();
  const auto& got = transport.result();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], 1e-3) << "element " << i;
  }
}

TEST(InaTransport, ChunkCountCoversTensor) {
  sw::AggregatorPool pool(64, 16);
  sw::InaTransport transport(pool, 1, random_workers(2, 100, 3));
  EXPECT_EQ(transport.chunk_count(), 7u);  // ceil(100/16)
}

TEST(InaTransport, SurvivesHeavyPacketLoss) {
  sw::AggregatorPool pool(64, 16);
  sw::InaTransportOptions opts;
  opts.packet_loss = 0.4;
  sw::InaTransport transport(pool, 1, random_workers(3, 200, 11), opts, 5);
  const sw::InaTransportStats stats = transport.run();
  ASSERT_TRUE(stats.completed);
  EXPECT_GT(stats.packets_lost, 0u);
  EXPECT_GT(stats.retransmissions, 0u);
  const auto ref = transport.reference();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(transport.result()[i], ref[i], 1e-3);
  }
}

TEST(InaTransport, WindowBoundsSlotUsage) {
  sw::AggregatorPool pool(64, 16);
  sw::InaTransportOptions opts;
  opts.window_slots = 2;
  sw::InaTransport transport(pool, 1, random_workers(2, 320, 13), opts);
  const sw::InaTransportStats stats = transport.run();
  EXPECT_TRUE(stats.completed);
  // 20 chunks through a 2-slot window -> at least 10 protocol rounds.
  EXPECT_GE(stats.rounds, 10u);
  EXPECT_EQ(pool.slots_in_use(), 0u);  // all recycled
}

TEST(InaTransport, SharedPoolTenantsBothComplete) {
  // Two jobs share a pool smaller than their combined windows.
  sw::AggregatorPool pool(24, 16);
  sw::InaTransportOptions opts;
  opts.window_slots = 16;
  sw::InaTransport a(pool, 1, random_workers(2, 256, 17), opts, 1);
  sw::InaTransport b(pool, 2, random_workers(2, 256, 19), opts, 2);
  // Run alternately chunk-window by chunk-window is not possible with the
  // synchronous API; run one after the other — the second must still find
  // a clean pool.
  EXPECT_TRUE(a.run().completed);
  EXPECT_TRUE(b.run().completed);
  EXPECT_EQ(pool.slots_in_use(), 0u);
}

TEST(InaTransport, ValidatesInputs) {
  sw::AggregatorPool pool(8, 16);
  EXPECT_THROW(sw::InaTransport(pool, 1, {}), std::invalid_argument);
  EXPECT_THROW(
      sw::InaTransport(pool, 1, {{1.0, 2.0}, {1.0}}),
      std::invalid_argument);
  sw::InaTransportOptions opts;
  opts.window_slots = 0;
  EXPECT_THROW(sw::InaTransport(pool, 1, {{1.0}}, opts),
               std::invalid_argument);
}

/// Property: correctness holds across worker counts and loss rates.
class InaTransportSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(InaTransportSweep, AlwaysMatchesReference) {
  const auto [workers, loss] = GetParam();
  sw::AggregatorPool pool(64, 32);
  sw::InaTransportOptions opts;
  opts.packet_loss = loss;
  sw::InaTransport transport(pool, 9,
                             random_workers(workers, 500, 23 + workers),
                             opts, 31);
  const sw::InaTransportStats stats = transport.run();
  ASSERT_TRUE(stats.completed);
  const auto ref = transport.reference();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(transport.result()[i], ref[i],
                workers * 1.0 / (1 << 15));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InaTransportSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(0.0, 0.1, 0.3)));

// --- trace I/O ---

TEST(TraceIo, RoundTrip) {
  wl::TraceOptions opts;
  opts.count = 40;
  opts.rate = 3.0;
  const wl::Trace original = wl::generate_trace(opts);
  std::stringstream buffer;
  wl::write_trace_csv(buffer, original);
  const wl::Trace loaded = wl::read_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(raw(loaded[i].arrival), raw(original[i].arrival), 1e-6);
    EXPECT_EQ(loaded[i].input_tokens, original[i].input_tokens);
    EXPECT_EQ(loaded[i].output_tokens, original[i].output_tokens);
  }
}

TEST(TraceIo, ParsesCommentsAndHeader) {
  std::stringstream in(
      "# comment\n"
      "arrival_s,input_tokens,output_tokens\n"
      "1.5,100,20\n"
      "\n"
      "0.5,50,10\n");
  const wl::Trace t = wl::read_trace_csv(in);
  ASSERT_EQ(t.size(), 2u);
  // Sorted by arrival, ids renumbered.
  EXPECT_DOUBLE_EQ(raw(t[0].arrival), raw(0.5));
  EXPECT_EQ(t[0].id, 0u);
  EXPECT_EQ(t[1].input_tokens, 100u);
}

TEST(TraceIo, RejectsMalformedRows) {
  std::stringstream missing("1.0,2\n");
  EXPECT_THROW(wl::read_trace_csv(missing), std::runtime_error);
  std::stringstream garbage("1.0,abc,3\n");
  EXPECT_THROW(wl::read_trace_csv(garbage), std::runtime_error);
  std::stringstream negative("-1.0,5,3\n");
  EXPECT_THROW(wl::read_trace_csv(negative), std::runtime_error);
}

TEST(TraceIo, SessionColumnsRoundTrip) {
  wl::MultiturnOptions opts;
  opts.base.rate = 4.0;
  opts.base.count = 60;
  const wl::Trace original = wl::generate_multiturn_trace(opts);
  std::stringstream buffer;
  wl::write_trace_csv(buffer, original);
  EXPECT_NE(buffer.str().find("session_id,prefix_tokens"),
            std::string::npos);
  const wl::Trace loaded = wl::read_trace_csv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].session_id, original[i].session_id);
    EXPECT_EQ(loaded[i].prefix_tokens, original[i].prefix_tokens);
  }
}

TEST(TraceIo, SessionlessTraceKeepsLegacyThreeColumnFormat) {
  wl::TraceOptions opts;
  opts.count = 10;
  const wl::Trace t = wl::generate_trace(opts);
  std::stringstream buffer;
  wl::write_trace_csv(buffer, t);
  // Byte-compatible with pre-tier traces: no session columns anywhere.
  EXPECT_EQ(buffer.str().find("session_id"), std::string::npos);
  for (std::string line; std::getline(buffer, line);) {
    if (line.empty() || line[0] == '#' || line.find("arrival") == 0) continue;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2)
        << "unexpected row: " << line;
  }
  // Legacy rows load with empty session fields.
  std::stringstream legacy("0.5,100,20\n");
  const wl::Trace loaded = wl::read_trace_csv(legacy);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].session_id, 0u);
  EXPECT_EQ(loaded[0].prefix_tokens, 0u);
}

TEST(TraceIo, RejectsBadSessionRows) {
  // 4 fields is neither legacy nor session format.
  std::stringstream four("1.0,100,20,7\n");
  EXPECT_THROW(wl::read_trace_csv(four), std::runtime_error);
  // A prefix claiming the whole input leaves no fresh turn tokens.
  std::stringstream prefix("1.0,100,20,7,100\n");
  EXPECT_THROW(wl::read_trace_csv(prefix), std::runtime_error);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(wl::load_trace_csv("/nonexistent/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, RescaleRateHitsTarget) {
  wl::TraceOptions opts;
  opts.count = 200;
  opts.rate = 2.0;
  wl::Trace t = wl::rescale_rate(wl::generate_trace(opts), 8.0);
  EXPECT_NEAR(raw(wl::summarize(t).mean_rate), raw(8.0), 0.01);
  // Lengths untouched.
  EXPECT_GT(t[0].input_tokens, 0u);
}

TEST(TraceIo, RescaleDegenerateTraces) {
  wl::Trace empty;
  EXPECT_TRUE(wl::rescale_rate(empty, 2.0).empty());
  wl::Trace one{wl::Request{0, 5.0, 10, 10}};
  EXPECT_DOUBLE_EQ(raw(wl::rescale_rate(one, 2.0)[0].arrival), raw(5.0));
}

// --- PCIe intra-server mode (paper SVII future work) ---

TEST(PcieMode, IntraServerEdgesUsePcieBandwidth) {
  topo::TestbedOptions opts;
  opts.links.intra_link = topo::IntraLink::kPcie;
  const topo::Graph g = topo::make_testbed(opts);
  int intra = 0;
  for (topo::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).kind != topo::LinkKind::kNvLink) continue;
    ++intra;
    EXPECT_LE(g.edge(e).capacity, 32.0 * units::GBps);
  }
  EXPECT_EQ(intra, 24);
}

TEST(PcieMode, CrossNumaPairsPayPenalty) {
  topo::TestbedOptions opts;
  opts.links.intra_link = topo::IntraLink::kPcie;
  const topo::Graph g = topo::make_testbed(opts);
  // Server 0: GPUs {g0,g1 | g2,g3} NUMA split. g0-g1 full PCIe, g0-g2
  // penalized.
  const auto by_server = g.gpus_by_server();
  auto edge_between = [&](topo::NodeId a, topo::NodeId b) -> const topo::Edge& {
    for (const topo::Adjacency& adj : g.neighbors(a)) {
      if (adj.peer == b && g.edge(adj.edge).kind == topo::LinkKind::kNvLink) {
        return g.edge(adj.edge);
      }
    }
    throw std::logic_error("no intra edge");
  };
  const topo::Edge& same_numa = edge_between(by_server[0][0], by_server[0][1]);
  const topo::Edge& cross_numa = edge_between(by_server[0][0], by_server[0][2]);
  EXPECT_DOUBLE_EQ(raw(same_numa.capacity), raw(32.0 * units::GBps));
  EXPECT_DOUBLE_EQ(raw(cross_numa.capacity), raw(16.0 * units::GBps));
  EXPECT_GT(cross_numa.latency, same_numa.latency);
}

TEST(PcieMode, NvLinkDefaultUnchanged) {
  const topo::Graph g = topo::make_testbed();
  for (topo::EdgeId e = 0; e < g.edge_count(); ++e) {
    if (g.edge(e).kind == topo::LinkKind::kNvLink) {
      EXPECT_DOUBLE_EQ(raw(g.edge(e).capacity), raw(600.0 * units::GBps));
    }
  }
}

TEST(PcieMode, HeterogeneousRoutingStillWorks) {
  // NVLink-forwarding semantics apply to PCIe edges the same way.
  topo::LinkSpec links;
  links.intra_link = topo::IntraLink::kPcie;
  const topo::Graph g = topo::make_fig2_example(links);
  const auto p = topo::shortest_path(g, g.find("GN1"), g.find("S2"));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 2u);
  EXPECT_TRUE(p->uses_nvlink(g));
}

}  // namespace
}  // namespace hero
