// Tests for common/units.hpp: the Quantity dimension algebra, the
// units:: constants, raw(), and numeric_limits coverage.
//
// Everything here compiles and passes in BOTH builds. In the default
// build the aliases are all plain double, so the type-level assertions
// hold trivially; under -DHERO_STRONG_UNITS they verify the Quantity
// operator set reproduces the same algebra structurally. The negative
// direction — `Bytes + Time` must NOT compile in the strong build — is
// the compile_fail/ CTest pair, not a runtime test.
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <type_traits>
#include <utility>

namespace {

using namespace hero;  // NOLINT(google-build-using-namespace)

// --- dimension algebra as types --------------------------------------
static_assert(std::is_same_v<
    decltype(std::declval<Bytes>() / std::declval<Time>()), Bandwidth>);
static_assert(std::is_same_v<
    decltype(std::declval<Bytes>() / std::declval<Bandwidth>()), Time>);
static_assert(std::is_same_v<
    decltype(std::declval<Bandwidth>() * std::declval<Time>()), Bytes>);
static_assert(std::is_same_v<
    decltype(std::declval<Tokens>() / std::declval<Time>()), TokenRate>);
static_assert(std::is_same_v<
    decltype(std::declval<TokenRate>() * std::declval<Time>()), Tokens>);
static_assert(std::is_same_v<
    decltype(std::declval<WorkRate>() * std::declval<Time>()), WorkUnits>);
static_assert(std::is_same_v<
    decltype(std::declval<WorkUnits>() / std::declval<WorkRate>()), Time>);
static_assert(std::is_same_v<decltype(1.0 / std::declval<Time>()), Rate>);
// Dimensionless ratios decay to plain double.
static_assert(std::is_same_v<
    decltype(std::declval<Bytes>() / std::declval<Bytes>()), double>);
static_assert(std::is_same_v<
    decltype(std::declval<Rate>() * std::declval<Time>()), double>);
// Same-dimension +/- stays in the dimension.
static_assert(std::is_same_v<
    decltype(std::declval<Time>() + std::declval<Time>()), Time>);
static_assert(std::is_same_v<
    decltype(std::declval<Bytes>() - std::declval<Bytes>()), Bytes>);
// Quantities are constexpr-capable and trivially copyable wrappers.
static_assert(std::is_trivially_copyable_v<Time>);
static_assert(sizeof(Time) == sizeof(double));

TEST(UnitsTest, ConstantsComposeToExpectedRawValues) {
  EXPECT_DOUBLE_EQ(raw(100.0 * units::Gbps), 12.5e9);
  EXPECT_DOUBLE_EQ(raw(1.0 * units::MiB), 1048576.0);
  EXPECT_DOUBLE_EQ(raw(1.0 * units::GiB), 1073741824.0);
  EXPECT_DOUBLE_EQ(raw(2.0 * units::ms), 0.002);
  EXPECT_DOUBLE_EQ(raw(1.0 * units::GBps), raw(8.0 * units::Gbps));
  EXPECT_DOUBLE_EQ(units::bits_per_byte, 8.0);
  EXPECT_DOUBLE_EQ(raw(1.0 * units::TFLOPs), 1e12);
}

TEST(UnitsTest, ArithmeticMatchesDoubleSemantics) {
  Time a = 1.5;
  Time b = 0.25;
  EXPECT_DOUBLE_EQ(raw(a + b), 1.75);
  EXPECT_DOUBLE_EQ(raw(a - b), 1.25);
  EXPECT_DOUBLE_EQ(raw(a * 2.0), 3.0);
  EXPECT_DOUBLE_EQ(raw(2.0 * a), 3.0);
  EXPECT_DOUBLE_EQ(raw(a / 2.0), 0.75);
  EXPECT_DOUBLE_EQ(raw(-a), -1.5);
  EXPECT_DOUBLE_EQ(raw(+a), 1.5);
  a += b;
  EXPECT_DOUBLE_EQ(raw(a), 1.75);
  a -= b;
  EXPECT_DOUBLE_EQ(raw(a), 1.5);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(raw(a), 6.0);
  a /= 3.0;
  EXPECT_DOUBLE_EQ(raw(a), 2.0);
}

TEST(UnitsTest, DimensionAlgebraValues) {
  Bytes data = 4.0 * units::MiB;
  Bandwidth bw = 2.0 * units::GBps;
  Time t = data / bw;
  EXPECT_DOUBLE_EQ(raw(t), 4.0 * 1024.0 * 1024.0 / 2e9);
  EXPECT_DOUBLE_EQ(raw(bw * t), raw(data));
  // Dimensionless ratio is an ordinary double.
  const double utilization = (1.0 * units::MiB) / (4.0 * units::MiB);
  EXPECT_DOUBLE_EQ(utilization, 0.25);
}

TEST(UnitsTest, ComparisonsAndOrdering) {
  Time fast = 1.0 * units::us;
  Time slow = 1.0 * units::ms;
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow, fast);
  EXPECT_LE(fast, fast);
  EXPECT_GE(slow, slow);
  EXPECT_TRUE(fast < slow && slow > fast);
  EXPECT_TRUE(Time{0.0} <= fast);
}

TEST(UnitsTest, RawIsPassThroughForDoubleAndUnwrapForQuantity) {
  EXPECT_DOUBLE_EQ(raw(2.5), 2.5);
  EXPECT_DOUBLE_EQ(raw(Time{2.5}), 2.5);
  EXPECT_DOUBLE_EQ(raw(Bytes{1024.0}), 1024.0);
}

TEST(UnitsTest, NumericLimitsSpecialization) {
  // The primary std::numeric_limits template would silently return
  // value-initialized (zero) quantities in the strong build; the
  // specialization must forward double's values.
  EXPECT_TRUE(std::isinf(raw(std::numeric_limits<Time>::infinity())));
  EXPECT_TRUE(std::isinf(raw(std::numeric_limits<WorkRate>::infinity())));
  EXPECT_TRUE(std::isnan(raw(std::numeric_limits<Time>::quiet_NaN())));
  EXPECT_DOUBLE_EQ(raw(std::numeric_limits<Bytes>::max()),
                   std::numeric_limits<double>::max());
  EXPECT_LT(std::numeric_limits<Time>::lowest(), Time{0.0});
  EXPECT_GT(std::numeric_limits<Time>::epsilon(), Time{0.0});
}

TEST(UnitsTest, StreamsExactlyLikeDouble) {
  std::ostringstream as_quantity;
  as_quantity << Time{0.125} << " " << Bytes{1e9};
  std::ostringstream as_double;
  as_double << 0.125 << " " << 1e9;
  EXPECT_EQ(as_quantity.str(), as_double.str());
}

TEST(UnitsTest, TransferTimeEdgeCases) {
  // Main coverage lives in common_test.cpp; keep the contract pinned
  // next to the algebra it is built from.
  EXPECT_DOUBLE_EQ(raw(transfer_time(Bytes{0.0}, 1.0 * units::GBps)), 0.0);
  EXPECT_TRUE(std::isinf(raw(transfer_time(1.0 * units::B, Bandwidth{0.0}))));
  EXPECT_DOUBLE_EQ(raw(transfer_time(1.0 * units::GB, 1.0 * units::GBps)),
                   1.0);
}

}  // namespace
