// Tests for trace generation (Poisson and bursty arrivals, dataset-style
// length distributions) and the moving-average workload estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "workload/trace.hpp"

namespace hero::wl {
namespace {

TEST(Trace, DeterministicForSeed) {
  TraceOptions opts;
  opts.rate = 2.0;
  opts.count = 50;
  opts.seed = 9;
  const Trace a = generate_trace(opts);
  const Trace b = generate_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw(a[i].arrival), raw(b[i].arrival));
    EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
}

TEST(Trace, ArrivalsMonotoneAndIdsSequential) {
  const Trace t = generate_trace({.rate = 5.0, .count = 100, .seed = 1});
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i].arrival, t[i - 1].arrival);
    EXPECT_EQ(t[i].id, i);
  }
}

TEST(Trace, PoissonRateMatches) {
  TraceOptions opts;
  opts.rate = 10.0;
  opts.count = 5000;
  const TraceStats stats = summarize(generate_trace(opts));
  EXPECT_NEAR(raw(stats.mean_rate), raw(10.0), 0.5);
}

TEST(Trace, RejectsNonPositiveRate) {
  TraceOptions opts;
  opts.rate = 0.0;
  EXPECT_THROW(generate_trace(opts), std::invalid_argument);
}

TEST(Trace, LengthsWithinClamps) {
  TraceOptions opts;
  opts.count = 500;
  opts.lengths = sharegpt_lengths();
  for (const Request& r : generate_trace(opts)) {
    EXPECT_GE(r.input_tokens, opts.lengths.input_min);
    EXPECT_LE(r.input_tokens, opts.lengths.input_max);
    EXPECT_GE(r.output_tokens, opts.lengths.output_min);
    EXPECT_LE(r.output_tokens, opts.lengths.output_max);
  }
}

TEST(Trace, ShareGptVersusLongBenchShapes) {
  TraceOptions chat;
  chat.count = 2000;
  chat.lengths = sharegpt_lengths();
  TraceOptions summ;
  summ.count = 2000;
  summ.lengths = longbench_lengths();
  const TraceStats c = summarize(generate_trace(chat));
  const TraceStats s = summarize(generate_trace(summ));
  // Summarization prompts are an order of magnitude longer, outputs shorter.
  EXPECT_GT(s.mean_input, 8.0 * c.mean_input);
  EXPECT_LT(s.mean_output, c.mean_output);
  EXPECT_NEAR(c.mean_input, 300.0, 120.0);
  EXPECT_NEAR(s.mean_input, 7500.0, 1500.0);
}

TEST(Trace, BurstyPreservesMeanRate) {
  TraceOptions opts;
  opts.rate = 10.0;
  opts.count = 8000;
  opts.bursty = true;
  opts.burst_multiplier = 4.0;
  opts.burst_fraction = 0.2;
  const TraceStats stats = summarize(generate_trace(opts));
  EXPECT_NEAR(raw(stats.mean_rate), raw(10.0), 2.0);
}

TEST(Trace, BurstyHasHigherVariance) {
  TraceOptions opts;
  opts.rate = 10.0;
  opts.count = 4000;
  auto gap_var = [](const Trace& t) {
    Summary s;
    for (std::size_t i = 1; i < t.size(); ++i) {
      s.add(raw(t[i].arrival - t[i - 1].arrival));
    }
    return s.variance();
  };
  const double poisson_var = gap_var(generate_trace(opts));
  opts.bursty = true;
  opts.burst_multiplier = 5.0;
  const double bursty_var = gap_var(generate_trace(opts));
  EXPECT_GT(bursty_var, 1.5 * poisson_var);
}

// --- diurnal + flash-crowd generators (autoscaling traces) ---

TEST(Diurnal, DeterministicForSeed) {
  DiurnalOptions opts;
  opts.base.rate = 4.0;
  opts.base.count = 200;
  opts.base.seed = 21;
  opts.period = 120.0;
  opts.amplitude = 0.6;
  const Trace a = generate_diurnal_trace(opts);
  const Trace b = generate_diurnal_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw(a[i].arrival), raw(b[i].arrival));
    EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
  opts.base.seed = 22;
  const Trace c = generate_diurnal_trace(opts);
  ASSERT_EQ(c.size(), a.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = raw(a[i].arrival) < raw(c[i].arrival) ||
              raw(c[i].arrival) < raw(a[i].arrival);
  }
  EXPECT_TRUE(differs) << "different seeds produced identical arrivals";
}

TEST(Diurnal, ModulatesRateAroundTheMean) {
  // Peak half-period carries more arrivals than the trough half-period.
  DiurnalOptions opts;
  opts.base.rate = 10.0;
  opts.base.count = 4000;
  opts.period = 200.0;
  opts.amplitude = 0.8;
  const Trace t = generate_diurnal_trace(opts);
  std::size_t peak_half = 0, trough_half = 0;
  for (const Request& r : t) {
    const double phase =
        raw(r.arrival) / raw(opts.period) -
        std::floor(raw(r.arrival) / raw(opts.period));
    (phase < 0.5 ? peak_half : trough_half) += 1;
  }
  EXPECT_GT(peak_half, trough_half + trough_half / 2);
}

TEST(FlashCrowd, DeterministicForSeed) {
  FlashCrowdOptions opts;
  opts.base.rate = 3.0;
  opts.base.count = 300;
  opts.base.seed = 33;
  opts.burst_start = 20.0;
  opts.burst_duration = 30.0;
  opts.burst_multiplier = 5.0;
  const Trace a = generate_flash_crowd_trace(opts);
  const Trace b = generate_flash_crowd_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw(a[i].arrival), raw(b[i].arrival));
    EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
}

TEST(FlashCrowd, BurstWindowRunsAtMultipliedRate) {
  FlashCrowdOptions opts;
  opts.base.rate = 5.0;
  opts.base.count = 4000;
  opts.burst_start = 100.0;
  opts.burst_duration = 100.0;
  opts.burst_multiplier = 4.0;
  const Trace t = generate_flash_crowd_trace(opts);
  std::size_t in_burst = 0, before = 0;
  for (const Request& r : t) {
    if (r.arrival >= opts.burst_start &&
        r.arrival < opts.burst_start + opts.burst_duration) {
      ++in_burst;
    } else if (r.arrival < opts.burst_start) {
      ++before;
    }
  }
  // Equal-length windows: the burst should carry ~4x the arrivals.
  EXPECT_GT(in_burst, 3 * before);
  EXPECT_GT(before, 0u);
}

TEST(FlashCrowd, RejectsBadOptions) {
  FlashCrowdOptions opts;
  opts.burst_multiplier = 0.5;
  EXPECT_THROW(generate_flash_crowd_trace(opts), std::invalid_argument);
  opts.burst_multiplier = 2.0;
  opts.burst_duration = 0.0;
  EXPECT_THROW(generate_flash_crowd_trace(opts), std::invalid_argument);
}

// --- multi-turn sessions (prefix/KV-tier workload) ---

TEST(Multiturn, DeterministicForSeed) {
  MultiturnOptions opts;
  opts.base.rate = 4.0;
  opts.base.count = 300;
  opts.base.seed = 17;
  const Trace a = generate_multiturn_trace(opts);
  const Trace b = generate_multiturn_trace(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw(a[i].arrival), raw(b[i].arrival));
    EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
    EXPECT_EQ(a[i].session_id, b[i].session_id);
    EXPECT_EQ(a[i].prefix_tokens, b[i].prefix_tokens);
  }
}

TEST(Multiturn, PrefixChainsAreConsistent) {
  MultiturnOptions opts;
  opts.base.rate = 5.0;
  opts.base.count = 500;
  opts.base.seed = 3;
  const Trace t = generate_multiturn_trace(opts);
  // Per-session bookkeeping: last seen turn's input+output per session.
  std::map<std::uint64_t, std::size_t> context;
  std::map<std::uint64_t, Time> last_arrival;
  for (const Request& r : t) {
    ASSERT_NE(r.session_id, 0u);  // every multiturn request has a session
    ASSERT_LT(r.prefix_tokens, r.input_tokens);
    const auto it = context.find(r.session_id);
    if (it == context.end()) {
      // First turn: the only shareable prefix is the system prompt, which
      // no earlier request served -> prefix_tokens must be 0.
      EXPECT_EQ(r.prefix_tokens, 0u);
    } else {
      // Follow-up: the declared prefix is exactly the accumulated context
      // (previous turn's input + output), and turns are time-ordered.
      EXPECT_EQ(r.prefix_tokens, it->second);
      EXPECT_GT(r.arrival, last_arrival[r.session_id]);
    }
    context[r.session_id] = r.input_tokens + r.output_tokens;
    last_arrival[r.session_id] = r.arrival;
  }
}

TEST(Multiturn, ContextCapEndsSessions) {
  MultiturnOptions opts;
  opts.base.rate = 5.0;
  opts.base.count = 800;
  opts.mean_turns = 50.0;  // would run forever without the cap
  opts.max_context_tokens = 2048;
  const Trace t = generate_multiturn_trace(opts);
  for (const Request& r : t) {
    EXPECT_LE(r.prefix_tokens, opts.max_context_tokens);
  }
}

TEST(Multiturn, ShareableFractionScalesWithTurns) {
  MultiturnOptions oneshot;
  oneshot.base.rate = 8.0;
  oneshot.base.count = 1500;
  oneshot.multi_turn_fraction = 0.0;
  const TraceStats a = summarize(generate_multiturn_trace(oneshot));
  EXPECT_DOUBLE_EQ(a.shareable_fraction, 0.0);
  EXPECT_GT(a.sessions, 0u);

  MultiturnOptions chat = oneshot;
  chat.multi_turn_fraction = 1.0;
  chat.mean_turns = 5.0;
  const TraceStats b = summarize(generate_multiturn_trace(chat));
  // Accumulated contexts dominate long sessions' prefill.
  EXPECT_GT(b.shareable_fraction, 0.4);
  EXPECT_LT(b.shareable_fraction, 1.0);
  EXPECT_LT(b.sessions, a.sessions);  // same request count, longer sessions
}

TEST(Multiturn, RejectsBadOptions) {
  MultiturnOptions opts;
  opts.mean_turns = 0.5;
  EXPECT_THROW(generate_multiturn_trace(opts), std::invalid_argument);
  opts.mean_turns = 4.0;
  opts.multi_turn_fraction = 1.5;
  EXPECT_THROW(generate_multiturn_trace(opts), std::invalid_argument);
  opts.multi_turn_fraction = 1.0;
  opts.think_mean = 0.0;
  EXPECT_THROW(generate_multiturn_trace(opts), std::invalid_argument);
}

TEST(Summarize, EmptyTrace) {
  const TraceStats s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(raw(s.mean_rate), raw(0.0));
}

// --- estimator ---

TEST(Estimator, TracksMovingAverages) {
  WorkloadEstimator est(4);
  est.observe(Request{0, 0, 100, 50});
  est.observe(Request{1, 0, 200, 100});
  EXPECT_EQ(est.observed(), 2u);
  EXPECT_EQ(est.k_in(2), 300u);   // 2 * avg(150)
  EXPECT_EQ(est.k_out(2), 150u);  // 2 * avg(75)
  // K_in2 = Q * avg(l^2) = 2 * (100^2 + 200^2)/2.
  EXPECT_EQ(est.k_in2(2), 50000u);
}

TEST(Estimator, WindowEvictsOldSamples) {
  WorkloadEstimator est(2);
  est.observe(Request{0, 0, 1000, 1});
  est.observe(Request{1, 0, 100, 1});
  est.observe(Request{2, 0, 100, 1});  // evicts the 1000
  EXPECT_EQ(est.k_in(1), 100u);
}

TEST(Estimator, PaperEstimatesForBatch) {
  // Feeding a ShareGPT-like trace gives K_in near Q * mean-input.
  WorkloadEstimator est(64);
  TraceOptions opts;
  opts.count = 64;
  opts.lengths = sharegpt_lengths();
  const Trace t = generate_trace(opts);
  for (const Request& r : t) est.observe(r);
  const TraceStats stats = summarize(t);
  EXPECT_NEAR(static_cast<double>(est.k_in(8)), 8.0 * stats.mean_input,
              8.0);
}

}  // namespace
}  // namespace hero::wl
