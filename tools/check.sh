#!/usr/bin/env bash
# Run the repo's correctness gates:
#   1. hero-lint over src/, tools/, bench/, examples/ (per-file rules
#      plus whole-program call-graph/layer/cycle analysis)
#   2. the tier-1 test suite under AddressSanitizer + UBSanitizer
#
#   tools/check.sh [extra ctest args...]
#
# Uses the `asan-ubsan` CMake preset (build-asan/, benches off). Any
# lint finding or sanitizer report fails the run
# (-fno-sanitize-recover=all).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

echo "== hero-lint =="
./build-asan/tools/lint/hero_lint src tools bench examples

echo "== ctest (asan-ubsan) =="
ctest --preset asan-ubsan -j "$(nproc)" "$@"
