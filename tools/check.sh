#!/usr/bin/env bash
# Run the tier-1 test suite under AddressSanitizer + UBSanitizer.
#
#   tools/check.sh [extra ctest args...]
#
# Uses the `asan-ubsan` CMake preset (build-asan/, benches off). Any
# sanitizer report fails the run (-fno-sanitize-recover=all).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
