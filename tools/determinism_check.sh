#!/usr/bin/env bash
# Determinism gate: the whole stack is a seeded discrete-event simulation,
# so two runs with the same seed must be byte-identical — stdout (plan,
# serving table, metrics snapshot) and the Chrome trace JSON alike. Any
# diff means hash-order, wall-clock, or ambient-RNG leakage; hero-lint
# catches those statically, this catches what slips through.
#
# Usage: tools/determinism_check.sh [build_dir] [seeds...]
#   default: build, seeds 1 2 3
set -euo pipefail

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
SEEDS=("$@")
if [ ${#SEEDS[@]} -eq 0 ]; then SEEDS=(1 2 3); fi

QUICKSTART="$(cd "$BUILD_DIR" && pwd)/examples/quickstart"
if [ ! -x "$QUICKSTART" ]; then
  echo "determinism_check: $QUICKSTART not built (run: cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAULT_PLAN="$REPO_ROOT/examples/faults/switch_chaos.json"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

RATE=2.0
REQUESTS=40
FAIL=0

for seed in "${SEEDS[@]}"; do
  for run in 1 2; do
    # Each run gets its own cwd and writes `trace.json` under the same
    # relative path, so the trace-file name echoed to stdout is identical
    # and stdout can be byte-compared.
    mkdir -p "$WORK/run-$seed-$run"
    ( cd "$WORK/run-$seed-$run" &&
      "$QUICKSTART" "$RATE" "$REQUESTS" --seed "$seed" \
          --trace trace.json > stdout.txt )
  done
  if ! cmp -s "$WORK/run-$seed-1/stdout.txt" "$WORK/run-$seed-2/stdout.txt"; then
    echo "determinism_check: FAIL seed=$seed stdout differs between runs" >&2
    diff "$WORK/run-$seed-1/stdout.txt" "$WORK/run-$seed-2/stdout.txt" | head -20 >&2 || true
    FAIL=1
  fi
  if ! cmp -s "$WORK/run-$seed-1/trace.json" "$WORK/run-$seed-2/trace.json"; then
    echo "determinism_check: FAIL seed=$seed trace JSON differs between runs" >&2
    FAIL=1
  fi
  if [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: seed=$seed OK (stdout + trace byte-identical)"
  fi

  # Chaos phase: the same gate under an active fault plan. Fault injection
  # is driven by simulator events, so chaos runs must reproduce just as
  # exactly as clean ones.
  for run in 1 2; do
    mkdir -p "$WORK/chaos-$seed-$run"
    ( cd "$WORK/chaos-$seed-$run" &&
      "$QUICKSTART" "$RATE" "$REQUESTS" --seed "$seed" \
          --trace trace.json --faults "$FAULT_PLAN" > stdout.txt )
  done
  if ! cmp -s "$WORK/chaos-$seed-1/stdout.txt" "$WORK/chaos-$seed-2/stdout.txt"; then
    echo "determinism_check: FAIL seed=$seed chaos stdout differs between runs" >&2
    diff "$WORK/chaos-$seed-1/stdout.txt" "$WORK/chaos-$seed-2/stdout.txt" | head -20 >&2 || true
    FAIL=1
  fi
  if ! cmp -s "$WORK/chaos-$seed-1/trace.json" "$WORK/chaos-$seed-2/trace.json"; then
    echo "determinism_check: FAIL seed=$seed chaos trace JSON differs between runs" >&2
    FAIL=1
  fi
  if ! grep -q "faults.injected" "$WORK/chaos-$seed-1/stdout.txt"; then
    echo "determinism_check: FAIL seed=$seed chaos run injected no faults" >&2
    FAIL=1
  fi
  if [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: seed=$seed chaos OK (stdout + trace byte-identical)"
  fi

  # Fleet phase: multi-instance serving behind the HeroServe router. The
  # router's cost reads live queue depths and fair-share bandwidth, so this
  # gate catches any dispatch-order or tie-break nondeterminism the
  # single-instance path cannot exercise.
  for run in 1 2; do
    mkdir -p "$WORK/fleet-$seed-$run"
    ( cd "$WORK/fleet-$seed-$run" &&
      "$QUICKSTART" "$RATE" "$REQUESTS" --seed "$seed" \
          --instances 4 --router hero --trace trace.json > stdout.txt )
  done
  if ! cmp -s "$WORK/fleet-$seed-1/stdout.txt" "$WORK/fleet-$seed-2/stdout.txt"; then
    echo "determinism_check: FAIL seed=$seed fleet stdout differs between runs" >&2
    diff "$WORK/fleet-$seed-1/stdout.txt" "$WORK/fleet-$seed-2/stdout.txt" | head -20 >&2 || true
    FAIL=1
  fi
  if ! cmp -s "$WORK/fleet-$seed-1/trace.json" "$WORK/fleet-$seed-2/trace.json"; then
    echo "determinism_check: FAIL seed=$seed fleet trace JSON differs between runs" >&2
    FAIL=1
  fi
  if ! grep -q "^fleet goodput" "$WORK/fleet-$seed-1/stdout.txt"; then
    echo "determinism_check: FAIL seed=$seed fleet run printed no fleet summary" >&2
    FAIL=1
  fi
  if [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: seed=$seed fleet OK (stdout + trace byte-identical)"
  fi

  # Engine-equivalence phase: the incremental max-min engine and the
  # whole-fabric solve must produce byte-identical output — stdout and the
  # trace JSON (event stream, metrics snapshot) alike, not merely close
  # numbers. Covers both the single-instance and the fleet pipeline.
  for mode in "" "--full-solve"; do
    dir="equiv-$seed${mode:+-full}"
    mkdir -p "$WORK/$dir"
    ( cd "$WORK/$dir" &&
      "$QUICKSTART" "$RATE" "$REQUESTS" --seed "$seed" $mode \
          --trace trace.json > stdout.txt )
  done
  if ! cmp -s "$WORK/equiv-$seed/stdout.txt" "$WORK/equiv-$seed-full/stdout.txt"; then
    echo "determinism_check: FAIL seed=$seed full-solve stdout diverges from incremental" >&2
    diff "$WORK/equiv-$seed/stdout.txt" "$WORK/equiv-$seed-full/stdout.txt" | head -20 >&2 || true
    FAIL=1
  fi
  if ! cmp -s "$WORK/equiv-$seed/trace.json" "$WORK/equiv-$seed-full/trace.json"; then
    echo "determinism_check: FAIL seed=$seed full-solve trace diverges from incremental" >&2
    FAIL=1
  fi
  if [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: seed=$seed engine-equivalence OK (incremental == full-solve)"
  fi
done

# Simspeed phase (when the bench is built): BENCH_simspeed.json must
# reproduce across reruns once the wall-clock keys (wall_*) are stripped,
# and the full-solve engine must agree on every key that is not
# wall-derived (wall_*) or solver-mode-dependent (solver_*).
BENCH_SIMSPEED="$(cd "$BUILD_DIR" && pwd)/bench/bench_simspeed"
if [ -x "$BENCH_SIMSPEED" ]; then
  strip_wall() { sed -E 's/, "wall_[a-z_]+": [^,}]+//g' "$1"; }
  strip_wall_solver() { sed -E 's/, "(wall|solver)_[a-z_]+": [^,}]+//g' "$1"; }
  for run in 1 2; do
    mkdir -p "$WORK/simspeed-$run"
    ( cd "$WORK/simspeed-$run" &&
      "$BENCH_SIMSPEED" --quick > stdout.txt 2>&1 )
  done
  mkdir -p "$WORK/simspeed-full"
  ( cd "$WORK/simspeed-full" &&
    "$BENCH_SIMSPEED" --quick --full-solve > stdout.txt 2>&1 )
  if ! cmp -s <(strip_wall "$WORK/simspeed-1/BENCH_simspeed.json") \
              <(strip_wall "$WORK/simspeed-2/BENCH_simspeed.json"); then
    echo "determinism_check: FAIL simspeed JSON differs between reruns (wall_ stripped)" >&2
    FAIL=1
  fi
  if ! cmp -s <(strip_wall_solver "$WORK/simspeed-1/BENCH_simspeed.json") \
              <(strip_wall_solver "$WORK/simspeed-full/BENCH_simspeed.json"); then
    echo "determinism_check: FAIL simspeed full-solve JSON diverges (wall_/solver_ stripped)" >&2
    diff <(strip_wall_solver "$WORK/simspeed-1/BENCH_simspeed.json") \
         <(strip_wall_solver "$WORK/simspeed-full/BENCH_simspeed.json") | head -10 >&2 || true
    FAIL=1
  fi
  if [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: simspeed OK (rerun + engine-equivalence)"
  fi
else
  echo "determinism_check: simspeed phase skipped ($BENCH_SIMSPEED not built)"
fi

# Autoscale phase (when the bench is built): the elastic-fleet controller
# runs on simulator timers and router counters only, so two bench runs —
# scale-ups, drains, GPU releases and all — must write byte-identical
# BENCH_autoscale.json files.
BENCH_AUTOSCALE="$(cd "$BUILD_DIR" && pwd)/bench/bench_autoscale"
if [ -x "$BENCH_AUTOSCALE" ]; then
  for run in 1 2; do
    mkdir -p "$WORK/autoscale-$run"
    ( cd "$WORK/autoscale-$run" &&
      "$BENCH_AUTOSCALE" --quick > stdout.txt 2>&1 )
  done
  if ! cmp -s "$WORK/autoscale-1/BENCH_autoscale.json" \
              "$WORK/autoscale-2/BENCH_autoscale.json"; then
    echo "determinism_check: FAIL autoscale JSON differs between reruns" >&2
    diff "$WORK/autoscale-1/BENCH_autoscale.json" \
         "$WORK/autoscale-2/BENCH_autoscale.json" | head -10 >&2 || true
    FAIL=1
  fi
  if ! grep -q "autoscale verdict: elastic PASSES" \
       "$WORK/autoscale-1/stdout.txt"; then
    echo "determinism_check: FAIL autoscale verdict not PASSES" >&2
    FAIL=1
  fi
  if [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: autoscale OK (rerun byte-identical, verdict PASSES)"
  fi
else
  echo "determinism_check: autoscale phase skipped ($BENCH_AUTOSCALE not built)"
fi

# Prefix-tier phase (when the bench is built): block publication, LRU
# eviction, directory lookups, and the stream-vs-recompute settlement all
# run on simulator state and seeded RNG only — so bench_prefix must write
# byte-identical BENCH_prefix.json files on rerun at every seed, and the
# default-seed run must hold the headline claim (affinity routing beats
# prefix-blind serving wherever >= 30% of prefill is shareable).
BENCH_PREFIX="$(cd "$BUILD_DIR" && pwd)/bench/bench_prefix"
if [ -x "$BENCH_PREFIX" ]; then
  for seed in "${SEEDS[@]}"; do
    for run in 1 2; do
      mkdir -p "$WORK/prefix-$seed-$run"
      ( cd "$WORK/prefix-$seed-$run" &&
        "$BENCH_PREFIX" --quick --seed "$seed" > stdout.txt 2>&1 )
    done
    if ! cmp -s "$WORK/prefix-$seed-1/BENCH_prefix.json" \
                "$WORK/prefix-$seed-2/BENCH_prefix.json"; then
      echo "determinism_check: FAIL seed=$seed prefix JSON differs between reruns" >&2
      diff "$WORK/prefix-$seed-1/BENCH_prefix.json" \
           "$WORK/prefix-$seed-2/BENCH_prefix.json" | head -10 >&2 || true
      FAIL=1
    else
      echo "determinism_check: seed=$seed prefix OK (rerun byte-identical)"
    fi
  done
  mkdir -p "$WORK/prefix-default"
  ( cd "$WORK/prefix-default" &&
    "$BENCH_PREFIX" --quick > stdout.txt 2>&1 )
  if ! grep -q "prefix verdict: affinity PASSES" \
       "$WORK/prefix-default/stdout.txt"; then
    echo "determinism_check: FAIL prefix verdict not PASSES" >&2
    FAIL=1
  elif [ "$FAIL" -eq 0 ]; then
    echo "determinism_check: prefix OK (verdict PASSES)"
  fi
else
  echo "determinism_check: prefix phase skipped ($BENCH_PREFIX not built)"
fi

# Strong-units phase (when the dimension-checked build exists): the
# HERO_STRONG_UNITS build swaps the Time/Bytes/... aliases for Quantity<>
# wrappers, which must perform the identical double operations in the
# identical order — so quickstart and fleet stdout + traces must be
# byte-identical ACROSS builds, not merely within one
# (DESIGN.md -> "Dimensional correctness").
STRONG_DIR="${STRONG_BUILD_DIR:-${BUILD_DIR%/}-strong}"
STRONG_QUICKSTART=""
if [ -d "$STRONG_DIR" ]; then
  STRONG_QUICKSTART="$(cd "$STRONG_DIR" && pwd)/examples/quickstart"
fi
if [ -n "$STRONG_QUICKSTART" ] && [ -x "$STRONG_QUICKSTART" ]; then
  for seed in "${SEEDS[@]}"; do
    mkdir -p "$WORK/strong-$seed" "$WORK/strong-fleet-$seed"
    ( cd "$WORK/strong-$seed" &&
      "$STRONG_QUICKSTART" "$RATE" "$REQUESTS" --seed "$seed" \
          --trace trace.json > stdout.txt )
    ( cd "$WORK/strong-fleet-$seed" &&
      "$STRONG_QUICKSTART" "$RATE" "$REQUESTS" --seed "$seed" \
          --instances 4 --router hero --trace trace.json > stdout.txt )
    for pair in "run-$seed-1 strong-$seed" "fleet-$seed-1 strong-fleet-$seed"; do
      set -- $pair
      if ! cmp -s "$WORK/$1/stdout.txt" "$WORK/$2/stdout.txt"; then
        echo "determinism_check: FAIL seed=$seed strong-units stdout diverges ($1 vs $2)" >&2
        diff "$WORK/$1/stdout.txt" "$WORK/$2/stdout.txt" | head -20 >&2 || true
        FAIL=1
      fi
      if ! cmp -s "$WORK/$1/trace.json" "$WORK/$2/trace.json"; then
        echo "determinism_check: FAIL seed=$seed strong-units trace diverges ($1 vs $2)" >&2
        FAIL=1
      fi
    done
    if [ "$FAIL" -eq 0 ]; then
      echo "determinism_check: seed=$seed strong-units OK (default == strong, quickstart + fleet)"
    fi
  done
else
  echo "determinism_check: strong-units phase skipped ($STRONG_DIR/examples/quickstart not built)"
fi

if [ "$FAIL" -ne 0 ]; then
  echo "determinism_check: FAILED" >&2
  exit 1
fi
echo "determinism_check: all ${#SEEDS[@]} seeds reproducible"
