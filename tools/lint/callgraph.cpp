#include "callgraph.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

namespace herolint {
namespace {

/// Per-file rule -> transitive rule. Sinks are exactly the direct
/// findings of these rules (pre-suppression: an allowed direct use is
/// still a sink when dispatch can reach it — that is a different bug
/// than the one the direct allow justified).
const std::map<std::string, std::string>& sink_rule_map() {
  static const std::map<std::string, std::string> kMap = {
      {"wall-clock", "transitive-wall-clock"},
      {"ambient-rng", "transitive-rng"},
      {"unordered-iter", "transitive-unordered-iter"},
  };
  return kMap;
}

/// Shortest entry->target chain using BFS parents, rendered as
/// "A::m (file:12) -> helper (file:34)".
std::string render_chain(const ProjectIndex& index,
                         const std::vector<int>& parent, int target) {
  std::vector<int> chain;
  for (int cur = target; cur >= 0; cur = parent[cur]) {
    chain.push_back(cur);
    if (parent[cur] == cur) break;  // entry points are their own parent
  }
  std::reverse(chain.begin(), chain.end());
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const FunctionDef& fn = index.functions()[chain[i]];
    if (i != 0) out += " -> ";
    out += fn.display() + " (" + index.files()[fn.file].path + ":" +
           std::to_string(fn.line) + ")";
  }
  return out;
}

/// Multi-source BFS over the call graph from every entry point. Returns
/// the parent array: parent[f] == -1 unreachable, parent[entry] == entry.
std::vector<int> reach_from_entries(const ProjectIndex& index,
                                    const CallGraph& graph) {
  const auto& fns = index.functions();
  std::vector<int> parent(fns.size(), -1);
  std::deque<int> queue;
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (is_entry(fns[i])) {
      parent[i] = static_cast<int>(i);
      queue.push_back(static_cast<int>(i));
    }
  }
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    for (int next : graph.out[cur]) {
      if (parent[next] >= 0) continue;
      parent[next] = cur;
      queue.push_back(next);
    }
  }
  return parent;
}

/// Raw sink findings (rule -> lines) grouped by enclosing function.
std::map<int, std::vector<Finding>> collect_sinks(
    const ProjectIndex& index,
    const std::vector<std::vector<Finding>>& raw_per_file) {
  std::map<int, std::vector<Finding>> sinks;
  for (std::size_t i = 0; i < raw_per_file.size(); ++i) {
    for (const Finding& f : raw_per_file[i]) {
      if (!sink_rule_map().contains(f.rule)) continue;
      const int fn = index.enclosing_function(static_cast<int>(i), f.line);
      if (fn >= 0) sinks[fn].push_back(f);
    }
  }
  return sinks;
}

std::vector<std::vector<Finding>> raw_findings_per_file(
    const ProjectIndex& index) {
  std::vector<std::vector<Finding>> raw;
  raw.reserve(index.files().size());
  for (const FileRecord& file : index.files()) {
    raw.push_back(
        raw_file_findings(file.path, file.src, file.tokens, file.ctx));
  }
  return raw;
}

/// Include adjacency: for each file, the (target file, include line)
/// edges that resolve inside the index.
std::vector<std::vector<std::pair<int, int>>> include_edges(
    const ProjectIndex& index) {
  std::vector<std::vector<std::pair<int, int>>> adj(index.files().size());
  for (std::size_t i = 0; i < index.files().size(); ++i) {
    for (const IncludeDecl& inc : index.files()[i].includes) {
      const int target =
          index.resolve_include(static_cast<int>(i), inc.target);
      if (target >= 0 && target != static_cast<int>(i)) {
        adj[i].push_back({target, inc.line});
      }
    }
  }
  return adj;
}

void check_layers(ProjectIndex& index, const AnalyzeOptions& opts,
                  LintReport& out) {
  const LayerSpec spec = LayerSpec::parse(opts.layers_text);
  for (const std::string& err : spec.errors) {
    out.findings.push_back({opts.layers_path, 1, "layer-violation", err});
  }
  if (!spec.cycle.empty()) {
    out.findings.push_back(
        {opts.layers_path, 1, "layer-violation",
         "declared layer graph is not a DAG: " + spec.cycle});
  }
  for (std::size_t i = 0; i < index.files().size(); ++i) {
    FileRecord& file = index.files()[i];
    if (file.subsystem.empty()) continue;  // drivers/tools are unlayered
    for (const IncludeDecl& inc : file.includes) {
      // Target subsystem: from the resolved file when the include
      // resolves, else from the path prefix when it names a declared
      // subsystem (so a violation is caught even in a partial scan).
      std::string target;
      const int resolved =
          index.resolve_include(static_cast<int>(i), inc.target);
      if (resolved >= 0) {
        target = index.files()[resolved].subsystem;
      } else {
        const std::size_t slash = inc.target.find('/');
        if (slash != std::string::npos) {
          const std::string prefix = inc.target.substr(0, slash);
          if (spec.declared(prefix)) target = prefix;
        }
      }
      if (target.empty() || target == file.subsystem) continue;
      std::string message;
      if (!spec.declared(file.subsystem)) {
        message = "subsystem '" + file.subsystem +
                  "' is not declared in " + opts.layers_path +
                  "; add it with its allowed dependencies";
      } else if (!spec.allowed.at(file.subsystem).contains(target)) {
        message = "include of '" + inc.target + "': layer DAG (" +
                  opts.layers_path + ") does not allow " + file.subsystem +
                  " -> " + target;
      } else {
        continue;
      }
      Finding f{file.path, inc.line, "layer-violation", message};
      (file.sup.consume(f.rule, f.line) ? out.suppressed : out.findings)
          .push_back(std::move(f));
    }
  }
}

void check_include_cycles(ProjectIndex& index, LintReport& out) {
  const auto adj = include_edges(index);
  const std::size_t n = index.files().size();
  // Iterate in path order so the reported representative of each cycle
  // is stable regardless of scan order.
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return index.files()[a].path < index.files()[b].path;
  });

  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(n, kWhite);
  std::vector<int> stack;  // current DFS path (file ids)
  std::set<std::set<int>> seen_cycles;

  // Recursive DFS via explicit frames (file, next edge index).
  for (int root : order) {
    if (color[root] != kWhite) continue;
    std::vector<std::pair<int, std::size_t>> frames{{root, 0}};
    color[root] = kGray;
    stack.push_back(root);
    while (!frames.empty()) {
      auto& [cur, edge] = frames.back();
      if (edge >= adj[cur].size()) {
        color[cur] = kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const auto [next, line] = adj[cur][edge++];
      if (color[next] == kGray) {
        // Back edge: the cycle is stack[pos(next)..] plus this edge.
        auto it = std::find(stack.begin(), stack.end(), next);
        std::set<int> key(it, stack.end());
        if (seen_cycles.insert(key).second) {
          std::string chain;
          for (auto p = it; p != stack.end(); ++p) {
            chain += index.files()[*p].path + " -> ";
          }
          chain += index.files()[next].path;
          FileRecord& file = index.files()[cur];
          Finding f{file.path, line, "include-cycle",
                    "header include cycle: " + chain +
                        "; break it with a forward declaration or a "
                        "split header"};
          (file.sup.consume(f.rule, f.line) ? out.suppressed
                                            : out.findings)
              .push_back(std::move(f));
        }
      } else if (color[next] == kWhite) {
        color[next] = kGray;
        stack.push_back(next);
        frames.push_back({next, 0});
      }
    }
  }
}

void check_stale_suppressions(ProjectIndex& index, LintReport& out) {
  for (FileRecord& file : index.files()) {
    const std::vector<AllowSite> sites = file.sup.sites();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const AllowSite& site = sites[i];
      // An allow(stale-suppression) exists only to quiet this very rule;
      // exempting it avoids self-reference.
      if (site.rule == "stale-suppression") continue;
      if (file.sup.used(i)) continue;
      const bool known =
          std::find(rule_ids().begin(), rule_ids().end(), site.rule) !=
          rule_ids().end();
      std::string message =
          std::string("suppression '") +
          (site.file_wide ? "allow-file(" : "allow(") + site.rule +
          ")' no longer suppresses any finding; delete it";
      if (!known) {
        message += " (unknown rule '" + site.rule + "')";
      }
      Finding f{file.path, site.line, "stale-suppression",
                std::move(message)};
      (file.sup.consume(f.rule, f.line) ? out.suppressed : out.findings)
          .push_back(std::move(f));
    }
  }
}

}  // namespace

LayerSpec LayerSpec::parse(const std::string& text) {
  LayerSpec spec;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::size_t colon = line.find(':');
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    if (colon == std::string::npos) {
      spec.errors.push_back("layers.txt line " + std::to_string(line_no) +
                            ": expected 'subsystem: dep dep ...'");
      continue;
    }
    std::string name = line.substr(0, colon);
    const auto nb = name.find_first_not_of(" \t");
    const auto ne = name.find_last_not_of(" \t");
    name = nb == std::string::npos ? "" : name.substr(nb, ne - nb + 1);
    if (name.empty()) {
      spec.errors.push_back("layers.txt line " + std::to_string(line_no) +
                            ": empty subsystem name");
      continue;
    }
    if (spec.allowed.contains(name)) {
      spec.errors.push_back("layers.txt line " + std::to_string(line_no) +
                            ": duplicate subsystem '" + name + "'");
      continue;
    }
    std::set<std::string>& deps = spec.allowed[name];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
    deps.insert(name);  // self always allowed
  }
  // Every named dependency must itself be declared, and the declared
  // graph must be a DAG (DFS cycle check, deterministic map order).
  for (const auto& [name, deps] : spec.allowed) {
    for (const std::string& dep : deps) {
      if (!spec.allowed.contains(dep)) {
        spec.errors.push_back("layers.txt: '" + name +
                              "' depends on undeclared subsystem '" + dep +
                              "'");
      }
    }
  }
  std::map<std::string, char> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  // NOLINTNEXTLINE(misc-no-recursion): bounded by subsystem count
  auto dfs = [&](auto&& self, const std::string& node) -> bool {
    color[node] = 1;
    path.push_back(node);
    auto it = spec.allowed.find(node);
    if (it != spec.allowed.end()) {
      for (const std::string& dep : it->second) {
        if (dep == node || !spec.allowed.contains(dep)) continue;
        if (color[dep] == 1) {
          auto start = std::find(path.begin(), path.end(), dep);
          std::string chain;
          for (auto p = start; p != path.end(); ++p) chain += *p + " -> ";
          spec.cycle = chain + dep;
          return false;
        }
        if (color[dep] == 0 && !self(self, dep)) return false;
      }
    }
    color[node] = 2;
    path.pop_back();
    return true;
  };
  for (const auto& [name, deps] : spec.allowed) {
    if (color[name] == 0 && !dfs(dfs, name)) break;
  }
  return spec;
}

CallGraph CallGraph::build(const ProjectIndex& index) {
  CallGraph graph;
  const auto& fns = index.functions();
  graph.out.resize(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    std::set<int> targets;
    for (const CallSite& call : fns[i].calls) {
      if (call.qualifier == "std") continue;  // never a project function
      const std::vector<int> candidates = index.functions_named(call.name);
      if (candidates.empty()) continue;
      // Qualified calls prefer methods of the named class; member calls
      // link to methods only (a free function cannot be a receiver
      // call). Everything else is an over-approximate name match.
      std::vector<int> chosen;
      if (!call.qualifier.empty()) {
        for (int c : candidates) {
          if (fns[c].class_name == call.qualifier) chosen.push_back(c);
        }
      }
      if (chosen.empty() && call.member) {
        for (int c : candidates) {
          if (!fns[c].class_name.empty()) chosen.push_back(c);
        }
      }
      if (chosen.empty() && !call.member) chosen = candidates;
      for (int c : chosen) {
        if (c != static_cast<int>(i)) targets.insert(c);
      }
    }
    graph.out[i].assign(targets.begin(), targets.end());
  }
  return graph;
}

const std::vector<std::string>& entry_classes() {
  // The dispatch side of the simulation: event execution, serving step
  // paths, routing/scheduling decision points, collective/switch
  // engines, fault replay. Mirrors the table in DESIGN.md
  // ("Whole-program analysis").
  static const std::vector<std::string> kEntryClasses = {
      "AggregatorPool",   "ClusterSim",     "CollectiveEngine",
      "FaultInjector",    "FleetSim",       "HeroCommScheduler",
      "InaTransport",     "OnlineScheduler", "Router",
      "Simulator",        "StaticCommScheduler", "SwitchAgent",
      "SwitchRegistry"};
  return kEntryClasses;
}

bool is_entry(const FunctionDef& fn) {
  const auto& classes = entry_classes();
  return std::find(classes.begin(), classes.end(), fn.class_name) !=
         classes.end();
}

LintReport analyze_project(ProjectIndex& index, const AnalyzeOptions& opts) {
  LintReport out;

  // Tier 1: per-file rules, suppressions consumed per file.
  const std::vector<std::vector<Finding>> raw = raw_findings_per_file(index);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    FileRecord& file = index.files()[i];
    for (const Finding& f : raw[i]) {
      (file.sup.consume(f.rule, f.line) ? out.suppressed : out.findings)
          .push_back(f);
    }
  }

  // Tier 2: call-graph reachability from dispatch to sinks.
  const CallGraph graph = CallGraph::build(index);
  const std::vector<int> parent = reach_from_entries(index, graph);
  const std::map<int, std::vector<Finding>> sinks =
      collect_sinks(index, raw);
  for (const auto& [fn, fn_sinks] : sinks) {
    if (parent[fn] < 0) continue;  // not reachable from dispatch
    const std::string chain = render_chain(index, parent, fn);
    for (const Finding& sink : fn_sinks) {
      FileRecord& file = index.files()[index.functions()[fn].file];
      Finding f{file.path, sink.line, sink_rule_map().at(sink.rule),
                sink.message + " — reachable from simulator dispatch: " +
                    chain};
      (file.sup.consume(f.rule, f.line) ? out.suppressed : out.findings)
          .push_back(std::move(f));
    }
  }

  // Tier 3: architecture rules over the include graph.
  if (!opts.layers_text.empty()) check_layers(index, opts, out);
  check_include_cycles(index, out);

  // Last: anything still unconsumed in the suppression inventory rotted.
  check_stale_suppressions(index, out);

  const auto by_pos = [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  };
  std::sort(out.findings.begin(), out.findings.end(), by_pos);
  std::sort(out.suppressed.begin(), out.suppressed.end(), by_pos);
  return out;
}

std::string callgraph_dot(const ProjectIndex& index) {
  const CallGraph graph = CallGraph::build(index);
  const std::vector<int> parent = reach_from_entries(index, graph);
  const std::map<int, std::vector<Finding>> sinks =
      collect_sinks(index, raw_findings_per_file(index));
  const auto& fns = index.functions();

  std::string dot = "digraph herolint_calls {\n  rankdir=LR;\n"
                    "  node [fontsize=10, shape=ellipse];\n";
  auto node_id = [](int fn) { return "f" + std::to_string(fn); };
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (parent[i] < 0) continue;
    std::string attrs = "label=\"" + fns[i].display() + "\\n" +
                        index.files()[fns[i].file].path + ":" +
                        std::to_string(fns[i].line) + "\"";
    if (is_entry(fns[i])) attrs += ", shape=box";
    if (sinks.contains(static_cast<int>(i))) {
      attrs += ", color=red, fontcolor=red";
    }
    dot += "  " + node_id(static_cast<int>(i)) + " [" + attrs + "];\n";
  }
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (parent[i] < 0) continue;
    for (int next : graph.out[i]) {
      if (parent[next] < 0) continue;
      dot += "  " + node_id(static_cast<int>(i)) + " -> " + node_id(next) +
             ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

std::string include_dot(const ProjectIndex& index) {
  const auto adj = include_edges(index);
  std::string dot = "digraph herolint_includes {\n  rankdir=LR;\n"
                    "  node [fontsize=10, shape=note];\n";
  auto node_id = [](int file) { return "n" + std::to_string(file); };
  for (std::size_t i = 0; i < index.files().size(); ++i) {
    dot += "  " + node_id(static_cast<int>(i)) + " [label=\"" +
           index.files()[i].path + "\"];\n";
  }
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (const auto& [target, line] : adj[i]) {
      dot += "  " + node_id(static_cast<int>(i)) + " -> " +
             node_id(target) + ";\n";
    }
  }
  dot += "}\n";
  return dot;
}

}  // namespace herolint
