// hero-lint whole-program analysis: the call graph over a ProjectIndex
// and the v3 graph rules.
//
//   transitive-wall-clock / transitive-rng / transitive-unordered-iter
//       a nondeterminism sink (detected by the per-file rules in any TU)
//       inside a function reachable from simulator event dispatch. The
//       entry-point set is every method of the dispatch-side classes
//       (kEntryClasses below: the simulator core, the serving/step
//       paths, the router/scheduler decision points, the collective and
//       switch engines, the fault injector). The finding reports the
//       full call chain entry -> ... -> sink.
//   layer-violation
//       an include edge between src/ subsystems the declared layer DAG
//       (tools/lint/layers.txt) does not allow.
//   include-cycle
//       a cycle in the quoted-include graph among indexed files.
//   stale-suppression
//       a `hero-lint: allow(...)` comment that suppressed nothing after
//       every per-file and project rule has run.
//
// Call resolution is name-based and deliberately over-approximate (no
// types): `x.step()` links to every method named `step`; unqualified
// `helper()` links to every project function named `helper`; `std::`
// qualified calls never link. Over-approximation can only add edges, so
// reachability errs on the side of flagging — suppress with a
// justification comment when a chain is provably dead.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "index.hpp"
#include "lint_core.hpp"

namespace herolint {

/// The declared layer DAG: each src/ subsystem and the subsystems it may
/// include from. Parsed from tools/lint/layers.txt (`name: dep dep ...`,
/// '#' comments). Self-dependencies are implicit.
struct LayerSpec {
  std::map<std::string, std::set<std::string>> allowed;
  std::vector<std::string> errors;  ///< malformed lines, undeclared deps
  std::string cycle;  ///< "a -> b -> a" when the declared graph is cyclic

  [[nodiscard]] static LayerSpec parse(const std::string& text);
  [[nodiscard]] bool declared(const std::string& subsystem) const {
    return allowed.contains(subsystem);
  }
};

/// Name-resolved call graph: out[f] is the sorted, deduplicated list of
/// function ids function f may call.
struct CallGraph {
  std::vector<std::vector<int>> out;

  [[nodiscard]] static CallGraph build(const ProjectIndex& index);
};

/// Classes whose methods are reachability roots (simulator dispatch).
[[nodiscard]] const std::vector<std::string>& entry_classes();

/// True when `fn` is an entry point.
[[nodiscard]] bool is_entry(const FunctionDef& fn);

struct AnalyzeOptions {
  /// Layer DAG source text; empty disables the layer-violation rule.
  std::string layers_text;
  /// Reporting label for layer findings (the file the text came from).
  std::string layers_path = "tools/lint/layers.txt";
};

/// Run every rule — per-file and whole-program — over the index.
/// Consumes suppressions (mutating each FileRecord's inventory) and then
/// reports the unconsumed ones as stale-suppression. Findings are sorted
/// by (file, line, rule).
[[nodiscard]] LintReport analyze_project(ProjectIndex& index,
                                         const AnalyzeOptions& opts);

/// Graphviz dump of the dispatch-reachable call graph: entry points
/// boxed, sink functions red, edges restricted to reachable nodes.
[[nodiscard]] std::string callgraph_dot(const ProjectIndex& index);

/// Graphviz dump of the resolved quoted-include graph.
[[nodiscard]] std::string include_dot(const ProjectIndex& index);

}  // namespace herolint
