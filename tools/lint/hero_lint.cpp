// hero_lint CLI: walk the given files/directories, index every C++
// source into a ProjectIndex, run the per-file AND whole-program rules
// (call-graph reachability, layer DAG, include cycles, stale
// suppressions), print findings as `file:line: [rule] message`, and exit
// non-zero when anything unsuppressed fires. See lint_core.hpp for the
// rule catalogue and callgraph.hpp for the graph rules.
//
// Usage: hero_lint [--json out.json] [--sarif out.sarif] [--stats]
//                  [--list-rules] [--layers FILE] [--graph-dot BASE]
//                  [paths...]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "index.hpp"
#include "lint_core.hpp"

namespace {

namespace fs = std::filesystem;

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Collect lintable files under `root` (file or directory), sorted so
/// the report itself is deterministic.
std::vector<std::string> collect(const std::string& root) {
  std::vector<std::string> files;
  std::error_code ec;
  const fs::file_status st = fs::status(root, ec);
  if (ec) {
    std::fprintf(stderr, "hero_lint: cannot stat '%s': %s\n", root.c_str(),
                 ec.message().c_str());
    return files;
  }
  if (fs::is_regular_file(st)) {
    files.push_back(root);
    return files;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && is_cpp_source(it->path())) {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_report(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "hero_lint: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  std::string sarif_path;
  std::string dot_base;
  std::string layers_path = "tools/lint/layers.txt";
  bool layers_explicit = false;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : herolint::rule_ids()) {
        std::printf("%-25s %s\n", r.c_str(),
                    herolint::rule_summary(r).c_str());
      }
      return 0;
    }
    if (arg == "--json" || arg == "--sarif" || arg == "--graph-dot" ||
        arg == "--layers") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hero_lint: %s needs a path\n", arg.c_str());
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--json") {
        json_path = value;
      } else if (arg == "--sarif") {
        sarif_path = value;
      } else if (arg == "--graph-dot") {
        dot_base = value;
      } else {
        layers_path = value;
        layers_explicit = true;
      }
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hero_lint [--json out.json] [--sarif out.sarif] "
          "[--stats] [--list-rules] [--layers FILE] [--graph-dot BASE] "
          "[paths...]\n"
          "  --layers FILE     layer DAG spec (default "
          "tools/lint/layers.txt;\n"
          "                    a missing default just disables the "
          "layer-violation rule)\n"
          "  --graph-dot BASE  write BASE.calls.dot (dispatch-reachable "
          "call graph)\n"
          "                    and BASE.includes.dot (quoted-include "
          "graph)\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "tools", "bench", "examples"};

  herolint::AnalyzeOptions opts;
  opts.layers_path = layers_path;
  if (!read_file(layers_path, opts.layers_text)) {
    if (layers_explicit) {
      std::fprintf(stderr, "hero_lint: cannot read layers file '%s'\n",
                   layers_path.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "hero_lint: note: no '%s'; layer-violation rule skipped\n",
                 layers_path.c_str());
  }

  herolint::ProjectIndex index;
  std::size_t files_seen = 0;
  for (const std::string& root : roots) {
    for (const std::string& file : collect(root)) {
      std::string content;
      if (!read_file(file, content)) {
        std::fprintf(stderr, "hero_lint: cannot read '%s'\n", file.c_str());
        continue;
      }
      ++files_seen;
      index.add_file(file, content);
    }
  }

  herolint::LintReport report = herolint::analyze_project(index, opts);

  std::map<std::string, std::size_t> fired, allowed;
  for (const herolint::Finding& f : report.suppressed) ++allowed[f.rule];
  for (const herolint::Finding& f : report.findings) {
    ++fired[f.rule];
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }

  if (!json_path.empty() &&
      !write_report(json_path, herolint::to_json(report.findings))) {
    return 2;
  }
  if (!sarif_path.empty() &&
      !write_report(sarif_path, herolint::to_sarif(report.findings))) {
    return 2;
  }
  if (!dot_base.empty()) {
    if (!write_report(dot_base + ".calls.dot",
                      herolint::callgraph_dot(index)) ||
        !write_report(dot_base + ".includes.dot",
                      herolint::include_dot(index))) {
      return 2;
    }
  }
  if (stats) {
    std::printf("%-25s %7s %8s\n", "rule", "fired", "allowed");
    for (const std::string& r : herolint::rule_ids()) {
      std::printf("%-25s %7zu %8zu\n", r.c_str(),
                  fired.count(r) != 0U ? fired.at(r) : 0,
                  allowed.count(r) != 0U ? allowed.at(r) : 0);
    }
  }
  std::printf("hero_lint: %zu finding%s (%zu allowed) in %zu file%s\n",
              report.findings.size(),
              report.findings.size() == 1 ? "" : "s",
              report.suppressed.size(), files_seen,
              files_seen == 1 ? "" : "s");
  return report.findings.empty() ? 0 : 1;
}
