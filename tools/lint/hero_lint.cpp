// hero_lint CLI: walk the given files/directories, lint every C++
// source, print findings as `file:line: [rule] message`, and exit
// non-zero when anything unsuppressed fires. See lint_core.hpp for the
// rule catalogue.
//
// Usage: hero_lint [--json out.json] [--sarif out.sarif] [--stats]
//                  [--list-rules] [paths...]
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

namespace fs = std::filesystem;

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Collect lintable files under `root` (file or directory), sorted so
/// the report itself is deterministic.
std::vector<std::string> collect(const std::string& root) {
  std::vector<std::string> files;
  std::error_code ec;
  const fs::file_status st = fs::status(root, ec);
  if (ec) {
    std::fprintf(stderr, "hero_lint: cannot stat '%s': %s\n", root.c_str(),
                 ec.message().c_str());
    return files;
  }
  if (fs::is_regular_file(st)) {
    files.push_back(root);
    return files;
  }
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && is_cpp_source(it->path())) {
      files.push_back(it->path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_report(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "hero_lint: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << body;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::string json_path;
  std::string sarif_path;
  bool stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : herolint::rule_ids()) {
        std::printf("%-25s %s\n", r.c_str(),
                    herolint::rule_summary(r).c_str());
      }
      return 0;
    }
    if (arg == "--json" || arg == "--sarif") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hero_lint: %s needs a path\n", arg.c_str());
        return 2;
      }
      (arg == "--json" ? json_path : sarif_path) = argv[++i];
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hero_lint [--json out.json] [--sarif out.sarif] "
          "[--stats] [--list-rules] [paths...]\n");
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) roots = {"src", "examples", "bench"};

  std::vector<herolint::Finding> all;
  std::map<std::string, std::size_t> fired, allowed;
  std::size_t files_seen = 0;
  std::size_t suppressed_total = 0;
  for (const std::string& root : roots) {
    for (const std::string& file : collect(root)) {
      std::string content;
      if (!read_file(file, content)) {
        std::fprintf(stderr, "hero_lint: cannot read '%s'\n", file.c_str());
        continue;
      }
      ++files_seen;
      const herolint::FileContext ctx = herolint::classify_path(file);
      herolint::LintReport report =
          herolint::lint_source_report(file, content, ctx);
      for (const herolint::Finding& f : report.suppressed) {
        ++allowed[f.rule];
        ++suppressed_total;
      }
      for (herolint::Finding& f : report.findings) {
        ++fired[f.rule];
        all.push_back(std::move(f));
      }
    }
  }

  for (const herolint::Finding& f : all) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!json_path.empty() &&
      !write_report(json_path, herolint::to_json(all))) {
    return 2;
  }
  if (!sarif_path.empty() &&
      !write_report(sarif_path, herolint::to_sarif(all))) {
    return 2;
  }
  if (stats) {
    std::printf("%-25s %7s %8s\n", "rule", "fired", "allowed");
    for (const std::string& r : herolint::rule_ids()) {
      std::printf("%-25s %7zu %8zu\n", r.c_str(),
                  fired.count(r) != 0U ? fired.at(r) : 0,
                  allowed.count(r) != 0U ? allowed.at(r) : 0);
    }
  }
  std::printf("hero_lint: %zu finding%s (%zu allowed) in %zu file%s\n",
              all.size(), all.size() == 1 ? "" : "s", suppressed_total,
              files_seen, files_seen == 1 ? "" : "s");
  return all.empty() ? 0 : 1;
}
