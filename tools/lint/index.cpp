#include "index.hpp"

#include <algorithm>
#include <regex>
#include <set>

namespace herolint {
namespace {

/// Keywords that look like `name(...)` but are never project calls or
/// function declarators.
bool call_keyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",   "switch",        "catch",
      "return",   "sizeof",   "alignof", "decltype",      "noexcept",
      "new",      "delete",   "throw",   "static_assert", "assert",
      "defined",  "alignas",  "co_await", "co_return",    "co_yield",
      "requires", "explicit", "operator"};
  return kKeywords.contains(t);
}

/// Per-line flag: preprocessor directive (or its backslash continuation).
/// Macro bodies must not register as function definitions or call sites.
std::vector<bool> preproc_lines(const MaskedSource& src) {
  std::vector<bool> flags(src.code.size(), false);
  bool continued = false;
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    const std::size_t first = line.find_first_not_of(" \t");
    const bool directive = first != std::string::npos && line[first] == '#';
    flags[i] = directive || continued;
    const std::size_t last = line.find_last_not_of(" \t");
    continued = flags[i] && last != std::string::npos && line[last] == '\\';
  }
  return flags;
}

/// `#include "..."` targets with their lines, from the raw content (the
/// masked view blanks string bodies, so this scans the original text).
std::vector<IncludeDecl> extract_includes(const std::string& content) {
  static const std::regex inc(R"(^\s*#\s*include\s*"([^"]+)\")");
  std::vector<IncludeDecl> out;
  int line = 1;
  std::size_t begin = 0;
  while (begin <= content.size()) {
    std::size_t end = content.find('\n', begin);
    if (end == std::string::npos) end = content.size();
    const std::string text = content.substr(begin, end - begin);
    std::smatch m;
    if (std::regex_search(text, m, inc)) {
      out.push_back({m[1].str(), line});
    }
    begin = end + 1;
    ++line;
  }
  return out;
}

struct Scope {
  enum class Kind { kNamespace, kType, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;  // type name for kType
  int fn = -1;       // FunctionDef id for kFunction
};

/// The declarator search: first top-level `ident(` in the statement
/// buffer that is not a keyword. Returns the buffer index of the name
/// token, or npos.
std::size_t find_declarator(const std::vector<Token>& stmt) {
  int paren = 0;
  bool top_level_assign = false;
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const std::string& t = stmt[i].text;
    if (t == "(") {
      if (paren == 0 && i > 0) {
        const Token& prev = stmt[i - 1];
        if (prev.kind == Token::Kind::kIdent && !call_keyword(prev.text) &&
            !top_level_assign) {
          return i - 1;
        }
      }
      ++paren;
    } else if (t == ")") {
      --paren;
    } else if (t == "=" && paren == 0) {
      // `auto v = expr {...}` and friends are initializers, not function
      // definitions — unless the `=` spells `operator=`.
      if (i == 0 || stmt[i - 1].text != "operator") top_level_assign = true;
    }
  }
  return std::string::npos;
}

/// Last class/struct/union/enum keyword at paren depth 0 wins, so
/// `template <class T> struct X {` names X, not T.
std::size_t find_type_keyword(const std::vector<Token>& stmt) {
  int paren = 0;
  std::size_t found = std::string::npos;
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const std::string& t = stmt[i].text;
    if (t == "(") ++paren;
    if (t == ")") --paren;
    if (paren != 0 || stmt[i].kind != Token::Kind::kIdent) continue;
    if (t == "class" || t == "struct" || t == "union" || t == "enum") {
      found = i;
    }
  }
  return found;
}

/// Record `ident(` call sites from `toks[begin, end)` into `fn`.
void collect_calls(const std::vector<Token>& toks, std::size_t begin,
                   std::size_t end, FunctionDef& fn) {
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (toks[i].kind != Token::Kind::kIdent || call_keyword(toks[i].text) ||
        toks[i + 1].text != "(") {
      continue;
    }
    CallSite call;
    call.name = toks[i].text;
    call.line = toks[i].line;
    if (i >= 1 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      call.member = true;
    } else if (i >= 2 && toks[i - 1].text == "::" &&
               toks[i - 2].kind == Token::Kind::kIdent) {
      call.qualifier = toks[i - 2].text;
    }
    fn.calls.push_back(std::move(call));
  }
}

}  // namespace

std::string subsystem_of(const std::string& path) {
  std::size_t pos;
  if (path.rfind("src/", 0) == 0) {
    pos = 4;
  } else if ((pos = path.find("/src/")) != std::string::npos) {
    pos += 5;
  } else {
    return {};
  }
  const std::size_t slash = path.find('/', pos);
  if (slash == std::string::npos) return {};  // src/file.hpp: no subsystem
  return path.substr(pos, slash - pos);
}

void ProjectIndex::add_file(const std::string& path,
                            const std::string& content) {
  if (path_to_file_.contains(path)) return;
  const int file_id = static_cast<int>(files_.size());
  path_to_file_[path] = file_id;

  FileRecord rec;
  rec.path = path;
  rec.ctx = classify_path(path);
  rec.src = mask(content);
  rec.tokens = tokenize(rec.src);
  rec.sup = Suppressions::collect(rec.src);
  rec.includes = extract_includes(content);
  rec.subsystem = subsystem_of(path);

  // Function/method extraction over the non-preprocessor token stream.
  const std::vector<bool> preproc = preproc_lines(rec.src);
  std::vector<Token> toks;
  for (const Token& t : rec.tokens) {
    if (!preproc[static_cast<std::size_t>(t.line) - 1]) toks.push_back(t);
  }

  std::vector<Scope> scopes;
  std::vector<Token> stmt;  // statement buffer at non-function scope
  int current_fn = -1;      // innermost open FunctionDef, or -1

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (current_fn >= 0) {
      // Inside a function body: braces only nest blocks; calls are
      // collected as they stream past.
      if (tok.text == "{") {
        scopes.push_back({Scope::Kind::kBlock, "", -1});
      } else if (tok.text == "}") {
        if (!scopes.empty() && scopes.back().kind == Scope::Kind::kBlock) {
          scopes.pop_back();
        } else if (!scopes.empty() &&
                   scopes.back().kind == Scope::Kind::kFunction) {
          functions_[current_fn].end_line = tok.line;
          scopes.pop_back();
          current_fn = -1;
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->kind == Scope::Kind::kFunction) {
              current_fn = it->fn;
              break;
            }
          }
        }
      } else if (tok.kind == Token::Kind::kIdent && i + 1 < toks.size() &&
                 toks[i + 1].text == "(" && !call_keyword(tok.text)) {
        collect_calls(toks, i, i + 2, functions_[current_fn]);
      }
      continue;
    }

    // Namespace/class/global scope: classify each `{` from the statement
    // leading up to it.
    if (tok.text == ";") {
      stmt.clear();
    } else if (tok.text == "}") {
      if (!scopes.empty()) scopes.pop_back();
      stmt.clear();
    } else if (tok.text == "{") {
      Scope scope;
      const bool is_namespace =
          std::any_of(stmt.begin(), stmt.end(), [](const Token& t) {
            return t.kind == Token::Kind::kIdent && t.text == "namespace";
          });
      const std::size_t type_kw = find_type_keyword(stmt);
      const std::size_t decl = is_namespace || type_kw != std::string::npos
                                   ? std::string::npos
                                   : find_declarator(stmt);
      if (is_namespace) {
        scope.kind = Scope::Kind::kNamespace;
      } else if (type_kw != std::string::npos) {
        scope.kind = Scope::Kind::kType;
        // First plain identifier after the keyword names the type
        // (`enum class Scheme` skips the second keyword).
        for (std::size_t j = type_kw + 1; j < stmt.size(); ++j) {
          if (stmt[j].kind == Token::Kind::kIdent && stmt[j].text != "class" &&
              stmt[j].text != "struct" && stmt[j].text != "final") {
            scope.name = stmt[j].text;
            break;
          }
        }
      } else if (decl != std::string::npos) {
        scope.kind = Scope::Kind::kFunction;
        FunctionDef fn;
        fn.name = stmt[decl].text;
        fn.file = file_id;
        fn.line = stmt[decl].line;
        fn.end_line = tok.line;
        if (decl >= 2 && stmt[decl - 1].text == "::" &&
            stmt[decl - 2].kind == Token::Kind::kIdent) {
          fn.class_name = stmt[decl - 2].text;
        } else {
          for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            if (it->kind == Scope::Kind::kType) {
              fn.class_name = it->name;
              break;
            }
          }
        }
        // Constructor init lists call functions too:
        // `Foo() : x_(compute()) {` — scan past the parameter list.
        collect_calls(stmt, decl + 1, stmt.size(), fn);
        scope.fn = static_cast<int>(functions_.size());
        current_fn = scope.fn;
        by_name_[fn.name].push_back(scope.fn);
        functions_.push_back(std::move(fn));
      } else {
        scope.kind = Scope::Kind::kBlock;  // initializer / extern "C" / ...
      }
      scopes.push_back(std::move(scope));
      stmt.clear();
    } else {
      stmt.push_back(tok);
    }
  }
  // Unterminated function at EOF (truncated fixture): close it out.
  if (current_fn >= 0 && functions_[current_fn].end_line == 0) {
    functions_[current_fn].end_line =
        static_cast<int>(rec.src.code.size());
  }

  files_.push_back(std::move(rec));
}

std::vector<int> ProjectIndex::functions_named(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return {};
  return it->second;
}

int ProjectIndex::enclosing_function(int file, int line) const {
  int best = -1;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    const FunctionDef& fn = functions_[i];
    if (fn.file != file || line < fn.line || line > fn.end_line) continue;
    if (best < 0 || fn.line > functions_[best].line) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int ProjectIndex::resolve_include(int from_file,
                                  const std::string& target) const {
  auto exact = path_to_file_.find(target);
  if (exact != path_to_file_.end()) return exact->second;
  const std::string& from = files_[from_file].path;
  const std::size_t slash = from.rfind('/');
  if (slash != std::string::npos) {
    auto sib = path_to_file_.find(from.substr(0, slash + 1) + target);
    if (sib != path_to_file_.end()) return sib->second;
  }
  // Unique-suffix match covers include dirs (-Isrc): "common/units.hpp"
  // resolves against "src/common/units.hpp" wherever the scan rooted.
  const std::string suffix = "/" + target;
  for (const auto& [path, id] : path_to_file_) {
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return id;
    }
  }
  return -1;
}

}  // namespace herolint
