// hero-lint project index: one pass over every file in the analyzed
// trees, extracting the whole-program facts the v3 graph rules reason
// over:
//
//   * function/method definitions (name, enclosing class, line span)
//   * call sites inside each function body (callee name + qualifier)
//   * `#include "..."` edges between project files
//   * the src/ subsystem each file belongs to (for the layer DAG)
//
// The extractor is the same no-libclang token heuristic the per-file
// rules use, tuned for this repo's style: a `{` at namespace/class scope
// whose statement contains a top-level `ident(...)` declarator opens a
// function body; everything until the matching `}` belongs to it,
// including lambda bodies (their calls attribute to the enclosing
// function — exactly right for reachability, since the lambda runs when
// the enclosing dispatch path schedules it). Preprocessor lines are
// skipped, so macro definitions never masquerade as functions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint_core.hpp"
#include "source_text.hpp"

namespace herolint {

/// One `#include "target"` in a file (angle includes are not project
/// edges and are ignored).
struct IncludeDecl {
  std::string target;
  int line = 0;  // 1-based
};

/// A call site inside a function body. `qualifier` is the identifier
/// glued to the callee by `::` ("Simulator" in `Simulator::now()`, "std"
/// in `std::max(...)`, empty otherwise); `member` marks `.name(` /
/// `->name(` receiver calls.
struct CallSite {
  std::string name;
  std::string qualifier;
  int line = 0;
  bool member = false;
};

/// A function or method definition. Line span [line, end_line] covers the
/// declarator through the closing brace, so any finding line inside the
/// body maps back to its function.
struct FunctionDef {
  std::string name;        ///< bare name ("step")
  std::string class_name;  ///< enclosing class or "" for free functions
  int file = -1;           ///< index into ProjectIndex::files
  int line = 0;            ///< declarator's opening-brace line (1-based)
  int end_line = 0;        ///< closing-brace line
  std::vector<CallSite> calls;

  /// "ClusterSim::step" or "step".
  [[nodiscard]] std::string display() const {
    return class_name.empty() ? name : class_name + "::" + name;
  }
};

/// Everything the analyzer knows about one file. Suppressions are owned
/// here (mutable usage state) because per-file and project rules consume
/// from the same inventory.
struct FileRecord {
  std::string path;
  FileContext ctx;
  MaskedSource src;
  std::vector<Token> tokens;
  Suppressions sup;
  std::vector<IncludeDecl> includes;
  std::string subsystem;  ///< second path component under src/, or ""
};

/// Whole-program fact base: add every file, then hand the index to
/// CallGraph/analyze_project (index.cpp fills functions at add time; no
/// finalize step).
class ProjectIndex {
 public:
  /// Parse and index one file. `path` is the reporting/classification
  /// label; duplicate paths are ignored.
  void add_file(const std::string& path, const std::string& content);

  [[nodiscard]] const std::vector<FileRecord>& files() const {
    return files_;
  }
  [[nodiscard]] std::vector<FileRecord>& files() { return files_; }
  [[nodiscard]] const std::vector<FunctionDef>& functions() const {
    return functions_;
  }

  /// Function ids whose bare name is `name`, in definition order.
  [[nodiscard]] std::vector<int> functions_named(
      const std::string& name) const;

  /// Innermost function containing (file, line), or -1.
  [[nodiscard]] int enclosing_function(int file, int line) const;

  /// Resolve an include target against the indexed files: exact path,
  /// same-directory sibling, or unique path-suffix match. Returns the
  /// file id or -1.
  [[nodiscard]] int resolve_include(int from_file,
                                    const std::string& target) const;

 private:
  std::vector<FileRecord> files_;
  std::vector<FunctionDef> functions_;
  std::map<std::string, std::vector<int>> by_name_;
  std::map<std::string, int> path_to_file_;
};

/// "src/netsim/flownet.cpp" -> "netsim"; "" when not under src/ or with
/// no subsystem directory.
[[nodiscard]] std::string subsystem_of(const std::string& path);

}  // namespace herolint
