#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace herolint {
namespace {

struct RuleDoc {
  const char* id = nullptr;
  const char* summary = nullptr;
};

const RuleDoc kRuleDocs[] = {
    {"ambient-rng",
     "ambient randomness outside common/rng; derive from a seeded "
     "hero::Rng"},
    {"float-equal",
     "exact ==/!= against a floating-point literal; use an epsilon or "
     "integer state"},
    {"include-cycle",
     "cycle in the quoted-include graph; break it with a forward "
     "declaration or a split header"},
    {"iostream",
     "<iostream> in library code; log via common/log"},
    {"layer-violation",
     "include edge between src/ subsystems that the declared layer DAG "
     "(tools/lint/layers.txt) does not allow"},
    {"mixed-dimension-arith",
     "+/- combining unit-typed locals of different dimensions (e.g. "
     "bytes + seconds)"},
    {"raw-unit-literal",
     "unit-typed variable set from a conversion-factor-shaped literal "
     "without a units:: factor"},
    {"stale-suppression",
     "hero-lint: allow() comment that no longer suppresses any finding"},
    {"transitive-rng",
     "ambient randomness reachable from simulator dispatch through the "
     "whole-program call graph"},
    {"transitive-unordered-iter",
     "hash-ordered iteration reachable from simulator dispatch through "
     "the whole-program call graph"},
    {"transitive-wall-clock",
     "wall-clock source reachable from simulator dispatch through the "
     "whole-program call graph"},
    {"unconsumed-estimate",
     "discarded result of estimate_path()/load(); both are pure queries"},
    {"uninit-member",
     "scalar/pointer struct member without an initializer"},
    {"unordered-iter",
     "iteration over an unordered container; order depends on the stdlib "
     "hash"},
    {"unordered-iter-to-output",
     "unordered-container iteration emitting into a trace/report sink; "
     "output ordering would depend on the stdlib hash"},
    {"wall-clock",
     "ambient time source; simulated time comes from "
     "sim::Simulator::now()"},
};

const std::vector<std::string> kRuleIds = [] {
  std::vector<std::string> ids;
  for (const RuleDoc& d : kRuleDocs) ids.push_back(d.id);
  return ids;
}();

void scan_unordered_iter(const MaskedSource& src,
                         const std::string& path,
                         std::vector<Finding>& out) {
  const std::set<std::string> names = unordered_names(src);
  if (names.empty()) return;
  static const std::regex range_for(
      R"(for\s*\([^():]*:\s*\(?\s*\*?\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex begin_end(
      R"(([A-Za-z_]\w*)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\()");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), range_for);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      if (names.contains(name)) {
        out.push_back({path, static_cast<int>(i) + 1, "unordered-iter",
                       "range-for over unordered container '" + name +
                           "': iteration order depends on the stdlib hash; "
                           "use an ordered container or sorted keys"});
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), begin_end);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      // `x == c.end()` / `x != c.end()` after find() is a membership
      // test, not a traversal — skip sentinel comparisons.
      std::size_t before = static_cast<std::size_t>(it->position(0));
      while (before > 0 && line[before - 1] == ' ') --before;
      if (before >= 2 && line[before - 1] == '=' &&
          (line[before - 2] == '=' || line[before - 2] == '!')) {
        continue;
      }
      if (names.contains(name)) {
        out.push_back({path, static_cast<int>(i) + 1, "unordered-iter",
                       "iterator over unordered container '" + name +
                           "': traversal order depends on the stdlib hash; "
                           "use an ordered container or sorted keys"});
      }
    }
  }
}

void scan_wall_clock(const MaskedSource& src, const std::string& path,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const char* token :
         {"system_clock", "steady_clock", "high_resolution_clock",
          "gettimeofday", "localtime", "gmtime"}) {
      const std::size_t pos = line.find(token);
      const std::size_t end = pos == std::string::npos
                                  ? std::string::npos
                                  : pos + std::string(token).size();
      if (pos != std::string::npos && freestanding_token(line, pos) &&
          (end >= line.size() || !ident_char(line[end]))) {
        out.push_back({path, static_cast<int>(i) + 1, "wall-clock",
                       std::string("wall-clock source '") + token +
                           "': simulated time must come from "
                           "sim::Simulator::now()"});
      }
    }
    for (const char* fn : {"time", "clock"}) {
      if (!find_calls(line, fn).empty()) {
        out.push_back({path, static_cast<int>(i) + 1, "wall-clock",
                       std::string("wall-clock call '") + fn +
                           "()': simulated time must come from "
                           "sim::Simulator::now()"});
      }
    }
  }
}

void scan_ambient_rng(const MaskedSource& src, const std::string& path,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const char* token : {"random_device", "mt19937", "drand48"}) {
      const std::size_t pos = line.find(token);
      if (pos != std::string::npos && freestanding_token(line, pos)) {
        out.push_back({path, static_cast<int>(i) + 1, "ambient-rng",
                       std::string("ambient randomness '") + token +
                           "': derive all randomness from a seeded "
                           "hero::Rng (common/rng)"});
      }
    }
    for (const char* fn : {"rand", "srand"}) {
      if (!find_calls(line, fn).empty()) {
        out.push_back({path, static_cast<int>(i) + 1, "ambient-rng",
                       std::string("ambient randomness '") + fn +
                           "()': derive all randomness from a seeded "
                           "hero::Rng (common/rng)"});
      }
    }
  }
}

void scan_float_equal(const MaskedSource& src, const std::string& path,
                      std::vector<Finding>& out) {
  static const std::regex lit_rhs(
      R"([=!]=\s*[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?)");
  static const std::regex lit_lhs(
      R"((?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?\s*[=!]=)");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    if (std::regex_search(line, lit_rhs) ||
        std::regex_search(line, lit_lhs)) {
      out.push_back({path, static_cast<int>(i) + 1, "float-equal",
                     "exact ==/!= against a floating-point literal: "
                     "compare with an epsilon or track integer state"});
    }
  }
}

void scan_iostream(const MaskedSource& src, const std::string& path,
                   std::vector<Finding>& out) {
  static const std::regex inc(R"(^\s*#\s*include\s*<iostream>)");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (std::regex_search(src.code[i], inc)) {
      out.push_back({path, static_cast<int>(i) + 1, "iostream",
                     "<iostream> in library code: log via common/log, "
                     "print from examples/bench drivers only"});
    }
  }
}

void scan_uninit_member(const MaskedSource& src, const std::string& path,
                        std::vector<Finding>& out) {
  // Scalar-ish member types: builtins, fixed-width ints, the repo's
  // numeric/id aliases, and raw pointers.
  static const std::regex member(
      R"(^\s*(?:mutable\s+)?()"
      R"((?:std::)?(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t)|)"
      R"(bool|char|short|int|long(?:\s+long)?|unsigned(?:\s+int|\s+long)?|)"
      R"(float|double|Time|Bytes|Bandwidth|[A-Za-z_][\w:]*Id|)"
      R"([A-Za-z_][\w:]*(?:<[\w:,\s*&]*>)?\s*\*+)"
      R"()\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*;\s*$)");
  // Only `struct` scopes are checked: classes establish invariants in
  // constructors, while structs are used as aggregates whose members leak
  // indeterminate values when left bare. `enum class` is not a class.
  static const std::regex struct_head(R"((?:^|[;{}\s])struct\s+[A-Za-z_]\w*)");
  static const std::regex skip_kw(
      R"(^\s*(?:using|typedef|friend|static|constexpr|inline|extern|return))");

  struct Scope {
    int depth = 0;      // brace depth of the struct body
    bool is_struct = false;
  };
  std::vector<Scope> scopes;
  int depth = 0;
  bool pending_struct = false;  // saw a struct head, waiting for its '{'

  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    const bool head_here = std::regex_search(line, struct_head) &&
                           line.find(';') == std::string::npos &&
                           line.find("enum") == std::string::npos;

    // Member check happens at the struct body's own depth, before brace
    // bookkeeping for this line (members and braces rarely share a line).
    if (!scopes.empty() && scopes.back().is_struct &&
        depth == scopes.back().depth &&
        line.find('(') == std::string::npos &&
        line.find('=') == std::string::npos &&
        line.find('{') == std::string::npos &&
        !std::regex_search(line, skip_kw)) {
      std::smatch m;
      if (std::regex_match(line, m, member)) {
        out.push_back({path, static_cast<int>(i) + 1, "uninit-member",
                       "member '" + m[2].str() +
                           "' has no initializer: aggregate instances "
                           "inherit indeterminate values"});
      }
    }

    bool struct_opens = head_here || pending_struct;
    for (const char c : line) {
      if (c == '{') {
        ++depth;
        scopes.push_back({depth, struct_opens});
        struct_opens = false;
        pending_struct = false;
      } else if (c == '}') {
        if (!scopes.empty() && scopes.back().depth == depth) {
          scopes.pop_back();
        }
        --depth;
      }
    }
    if (head_here && struct_opens) pending_struct = true;
  }
}

// ---------------------------------------------------------------------------
// v2 flow-aware rules: run over the shared token stream (source_text.hpp)
// plus a per-file symbol table of unit-typed locals. Tokens carry their
// source line so findings stay clickable.

bool is_unit_type(const std::string& t) {
  static const std::set<std::string> kUnits = {
      "Time",   "Bytes",    "Bandwidth", "Rate",
      "Tokens", "TokenRate", "WorkUnits", "WorkRate"};
  return kUnits.contains(t);
}

/// Per-file symbol table: declared name -> unit type. Built from token
/// patterns `UnitType name` followed by `=`, `;`, `,`, `)` or `{` —
/// declarations and parameters, but not functions returning a unit type
/// (`Time transfer_time(...)`: next punct is '(').
std::map<std::string, std::string> unit_symbols(
    const std::vector<Token>& toks) {
  std::map<std::string, std::string> table;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent || !is_unit_type(toks[i].text)) {
      continue;
    }
    // Skip `hero ::` / `units ::` qualifiers backwards only to reject
    // `units::Time`-style nested names declared elsewhere — a qualifier
    // still declares the same unit type, so nothing to do.
    std::size_t j = i + 1;
    if (toks[j].kind != Token::Kind::kIdent) continue;
    const std::string& name = toks[j].text;
    if (j + 1 >= toks.size()) continue;
    const std::string& after = toks[j + 1].text;
    if (after == "=" || after == ";" || after == "," || after == ")" ||
        after == "{") {
      table[name] = toks[i].text;
    }
  }
  return table;
}

/// Absolute value of a numeric literal token, or -1 when unparsable.
double literal_value(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    // Accept trailing f/F/l/L suffixes; reject hex garbage half-parses.
    for (std::size_t k = used; k < text.size(); ++k) {
      const char c = text[k];
      if (c != 'f' && c != 'F' && c != 'l' && c != 'L' && c != 'u' &&
          c != 'U') {
        return -1.0;
      }
    }
    return v < 0 ? -v : v;
  } catch (...) {
    return -1.0;
  }
}

/// "Conversion-factor-shaped": scientific notation, or magnitude >= 1000.
/// Human-scale base-unit values (2.5 s SLA, 0.05 utilization floors) pass.
bool magic_literal(const std::string& text) {
  if (text.find('e') != std::string::npos ||
      text.find('E') != std::string::npos) {
    return true;
  }
  const double v = literal_value(text);
  return v >= 1000.0;
}

void scan_raw_unit_literal(const std::vector<Token>& toks,
                           const std::map<std::string, std::string>& symbols,
                           const std::string& path,
                           std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    // Two shapes: `UnitType name = init ;` and `known_name = init ;`.
    std::string name, unit;
    std::size_t eq = 0;
    if (toks[i].kind == Token::Kind::kIdent && is_unit_type(toks[i].text) &&
        toks[i + 1].kind == Token::Kind::kIdent &&
        toks[i + 2].text == "=") {
      name = toks[i + 1].text;
      unit = toks[i].text;
      eq = i + 2;
    } else if (toks[i].kind == Token::Kind::kIdent &&
               symbols.contains(toks[i].text) && toks[i + 1].text == "=" &&
               (i == 0 || (toks[i - 1].text != "." &&
                           toks[i - 1].text != "->" &&
                           toks[i - 1].kind != Token::Kind::kIdent))) {
      name = toks[i].text;
      unit = symbols.at(toks[i].text);
      eq = i + 1;
    } else {
      continue;
    }
    // Initializer must be literal-only arithmetic (identifiers mean the
    // value flows from something already typed) with at least one magic
    // literal and no units:: factor.
    bool magic = false;
    bool pure = true;
    std::size_t j = eq + 1;
    for (; j < toks.size() && toks[j].text != ";"; ++j) {
      if (toks[j].kind == Token::Kind::kIdent) {
        pure = false;
      } else if (toks[j].kind == Token::Kind::kNumber &&
                 magic_literal(toks[j].text)) {
        magic = true;
      }
    }
    if (pure && magic) {
      out.push_back(
          {path, toks[eq].line, "raw-unit-literal",
           "unit-typed '" + name + "' (" + unit +
               ") set from a bare conversion-factor literal: spell the "
               "unit with a units:: factor (e.g. 12.5 * units::GBps)"});
    }
  }
}

void scan_mixed_dimension_arith(
    const std::vector<Token>& toks,
    const std::map<std::string, std::string>& symbols,
    const std::string& path, std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& a = toks[i];
    const Token& op = toks[i + 1];
    const Token& b = toks[i + 2];
    if (a.kind != Token::Kind::kIdent || b.kind != Token::Kind::kIdent) {
      continue;
    }
    if (op.text != "+" && op.text != "-" && op.text != "+=" &&
        op.text != "-=") {
      continue;
    }
    // Member accesses (`x.bytes`) are not the locals the table knows, and
    // an operand glued to * or / takes its dimension from the whole
    // product (`chunk / bw + overhead` is Time + Time), so only bare
    // `local (+|-) local` pairs are judged.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
                  toks[i - 1].text == "::" || toks[i - 1].text == "*" ||
                  toks[i - 1].text == "/")) {
      continue;
    }
    if (i + 3 < toks.size() && (toks[i + 3].text == "." ||
                                toks[i + 3].text == "->" ||
                                toks[i + 3].text == "::" ||
                                toks[i + 3].text == "(" ||
                                toks[i + 3].text == "*" ||
                                toks[i + 3].text == "/")) {
      continue;
    }
    const auto ia = symbols.find(a.text);
    const auto ib = symbols.find(b.text);
    if (ia == symbols.end() || ib == symbols.end()) continue;
    if (ia->second == ib->second) continue;
    out.push_back({path, op.line, "mixed-dimension-arith",
                   "'" + a.text + "' (" + ia->second + ") " + op.text +
                       " '" + b.text + "' (" + ib->second +
                       "): additive arithmetic across dimensions is "
                       "always a unit bug"});
  }
}

void scan_unconsumed_estimate(const std::vector<Token>& toks,
                              const std::string& path,
                              std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent ||
        (toks[i].text != "estimate_path" && toks[i].text != "load")) {
      continue;
    }
    if (toks[i + 1].text != "(") continue;
    // Find the call's closing paren; the statement must end right after.
    int depth = 0;
    std::size_t close = i + 1;
    for (; close < toks.size(); ++close) {
      if (toks[close].text == "(") ++depth;
      if (toks[close].text == ")" && --depth == 0) break;
    }
    if (close + 1 >= toks.size() || toks[close + 1].text != ";") continue;
    // Walk back over the callee chain (`net . estimate_path`): the token
    // before the chain tells whether the value is consumed.
    std::size_t head = i;
    while (head >= 2 && (toks[head - 1].text == "." ||
                         toks[head - 1].text == "->" ||
                         toks[head - 1].text == "::") &&
           toks[head - 2].kind == Token::Kind::kIdent) {
      head -= 2;
    }
    const std::string prev = head == 0 ? ";" : toks[head - 1].text;
    if (prev == ";" || prev == "{" || prev == "}" || prev == ")") {
      out.push_back({path, toks[i].line, "unconsumed-estimate",
                     "result of '" + toks[i].text +
                         "()' is discarded: it is a pure query, so the "
                         "call without its value is dead (assign it or "
                         "delete the call)"});
    }
  }
}

void scan_unordered_iter_to_output(const MaskedSource& src,
                                   const std::string& path,
                                   std::vector<Finding>& out) {
  const std::set<std::string> names = unordered_names(src);
  if (names.empty()) return;
  static const std::regex range_for(
      R"(for\s*\([^():]*:\s*\(?\s*\*?\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex sink(
      R"(\b(instant|counter|begin_span|end_span|async_begin|async_end|add_row|printf|fprintf)\s*\()");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(src.code[i], m, range_for) ||
        !names.contains(m[1].str())) {
      continue;
    }
    // Loop body: from the for-line to the line where brace depth returns
    // to its pre-loop level (or the next ';' for a braceless body).
    int depth = 0;
    bool saw_brace = false;
    for (std::size_t j = i; j < src.code.size() && j < i + 64; ++j) {
      for (const char c : src.code[j]) {
        if (c == '{') {
          ++depth;
          saw_brace = true;
        } else if (c == '}') {
          --depth;
        }
      }
      if (std::regex_search(src.code[j], sink)) {
        out.push_back(
            {path, static_cast<int>(i) + 1, "unordered-iter-to-output",
             "range-for over unordered container '" + m[1].str() +
                 "' emits into a trace/report sink: emitted ordering "
                 "would follow the stdlib hash; iterate sorted keys"});
        break;
      }
      if (saw_brace && depth <= 0) break;
      if (!saw_brace && src.code[j].find(';') != std::string::npos) break;
    }
  }
}

}  // namespace

FileContext classify_path(const std::string& path) {
  FileContext ctx;
  auto contains = [&](const char* needle) {
    return path.find(needle) != std::string::npos;
  };
  ctx.library = contains("/src/") ||
                path.rfind("src/", 0) == 0;
  ctx.rng_module = contains("common/rng");
  return ctx;
}

std::vector<Finding> raw_file_findings(const std::string& path,
                                       const MaskedSource& src,
                                       const std::vector<Token>& toks,
                                       const FileContext& ctx) {
  const std::map<std::string, std::string> symbols = unit_symbols(toks);

  std::vector<Finding> raw;
  scan_unordered_iter(src, path, raw);
  scan_unordered_iter_to_output(src, path, raw);
  scan_wall_clock(src, path, raw);
  if (!ctx.rng_module) scan_ambient_rng(src, path, raw);
  scan_float_equal(src, path, raw);
  if (ctx.library) scan_iostream(src, path, raw);
  scan_uninit_member(src, path, raw);
  scan_raw_unit_literal(toks, symbols, path, raw);
  scan_mixed_dimension_arith(toks, symbols, path, raw);
  scan_unconsumed_estimate(toks, path, raw);

  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return raw;
}

LintReport lint_source_report(const std::string& path,
                              const std::string& content,
                              const FileContext& ctx) {
  const MaskedSource src = mask(content);
  Suppressions sup = Suppressions::collect(src);
  const std::vector<Token> toks = tokenize(src);

  LintReport report;
  for (Finding& f : raw_file_findings(path, src, toks, ctx)) {
    (sup.consume(f.rule, f.line) ? report.suppressed : report.findings)
        .push_back(std::move(f));
  }
  return report;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const FileContext& ctx) {
  return lint_source_report(path, content, ctx).findings;
}

const std::vector<std::string>& rule_ids() { return kRuleIds; }

std::string rule_summary(const std::string& rule) {
  for (const RuleDoc& d : kRuleDocs) {
    if (rule == d.id) return d.summary;
  }
  return {};
}

std::string to_json(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::string json = "{\n  \"count\": " + std::to_string(findings.size()) +
                     ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"file\": \"" + escape(f.file) +
            "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
            escape(f.rule) + "\", \"message\": \"" + escape(f.message) +
            "\"}";
  }
  json += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return json;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::string s;
  s += "{\n";
  s += "  \"$schema\": "
       "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  s += "  \"version\": \"2.1.0\",\n";
  s += "  \"runs\": [{\n";
  s += "    \"tool\": {\"driver\": {\n";
  s += "      \"name\": \"hero-lint\",\n";
  s += "      \"rules\": [";
  for (std::size_t i = 0; i < kRuleIds.size(); ++i) {
    s += i == 0 ? "\n" : ",\n";
    s += "        {\"id\": \"" + escape(kRuleIds[i]) +
         "\", \"shortDescription\": {\"text\": \"" +
         escape(rule_summary(kRuleIds[i])) + "\"}}";
  }
  s += "\n      ]\n";
  s += "    }},\n";
  s += "    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    s += i == 0 ? "\n" : ",\n";
    s += "      {\"ruleId\": \"" + escape(f.rule) +
         "\", \"level\": \"warning\", \"message\": {\"text\": \"" +
         escape(f.message) + "\"}, \"locations\": [{\"physicalLocation\": "
         "{\"artifactLocation\": {\"uri\": \"" + escape(f.file) +
         "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
         "}}}]}";
  }
  s += findings.empty() ? "]\n" : "\n    ]\n";
  s += "  }]\n";
  s += "}\n";
  return s;
}

}  // namespace herolint
