#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace herolint {
namespace {

const std::vector<std::string> kRuleIds = {
    "ambient-rng",   "float-equal",    "iostream",
    "uninit-member", "unordered-iter", "wall-clock"};

/// Split `content` into per-line code text (comments and string/char
/// literal bodies blanked out with spaces, lengths preserved) and per-line
/// comment text (everything else blanked). Keeping lengths identical makes
/// every match index a valid (line, column) in the original file.
struct MaskedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

MaskedSource mask(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  MaskedSource out;
  std::string code_line, comment_line;
  State state = State::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back(std::move(code_line));
      out.comments.push_back(std::move(comment_line));
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          comment_line += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          comment_line += "/*";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
          comment_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
          comment_line += ' ';
        } else {
          code_line += c;
          comment_line += ' ';
        }
        break;
      case State::kLineComment:
        code_line += ' ';
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          comment_line += "*/";
          ++i;
        } else {
          code_line += ' ';
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          comment_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
          comment_line += ' ';
        } else {
          code_line += ' ';
          comment_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          comment_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
          comment_line += ' ';
        } else {
          code_line += ' ';
          comment_line += ' ';
        }
        break;
    }
  }
  out.code.push_back(std::move(code_line));
  out.comments.push_back(std::move(comment_line));
  return out;
}

/// Parse a comma-separated rule list out of "...allow(rule-a, rule-b)...".
std::set<std::string> parse_allow_list(const std::string& text,
                                       std::size_t open_paren) {
  std::set<std::string> rules;
  const std::size_t close = text.find(')', open_paren);
  if (close == std::string::npos) return rules;
  std::string inside = text.substr(open_paren + 1, close - open_paren - 1);
  std::stringstream ss(inside);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) rules.insert(rule.substr(b, e - b + 1));
  }
  return rules;
}

struct Suppressions {
  std::set<std::string> file_wide;
  std::map<int, std::set<std::string>> per_line;  // 1-based line numbers

  [[nodiscard]] bool covers(const std::string& rule, int line) const {
    if (file_wide.contains(rule)) return true;
    for (int l : {line, line - 1}) {
      auto it = per_line.find(l);
      if (it != per_line.end() && it->second.contains(rule)) return true;
    }
    return false;
  }
};

Suppressions collect_suppressions(const MaskedSource& src) {
  Suppressions sup;
  for (std::size_t i = 0; i < src.comments.size(); ++i) {
    const std::string& text = src.comments[i];
    std::size_t pos = text.find("hero-lint:");
    while (pos != std::string::npos) {
      const std::size_t file_marker = text.find("allow-file(", pos);
      const std::size_t line_marker = text.find("allow(", pos);
      if (file_marker != std::string::npos) {
        for (const auto& r :
             parse_allow_list(text, file_marker + 10)) {
          sup.file_wide.insert(r);
        }
      } else if (line_marker != std::string::npos) {
        for (const auto& r : parse_allow_list(text, line_marker + 5)) {
          sup.per_line[static_cast<int>(i) + 1].insert(r);
        }
      }
      pos = text.find("hero-lint:", pos + 1);
    }
  }
  return sup;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos]` starts a freestanding call-like token: not a
/// member access (`.x`, `->x`), not the tail of a longer identifier.
/// `::` prefixes are allowed (std::time must be flagged).
bool freestanding_token(const std::string& text, std::size_t pos) {
  if (pos == 0) return true;
  const char prev = text[pos - 1];
  if (ident_char(prev) || prev == '.') return false;
  if (prev == '>' && pos >= 2 && text[pos - 2] == '-') return false;
  return true;
}

/// Occurrences of `token` followed (after spaces) by '(' that are real
/// freestanding calls.
std::vector<std::size_t> find_calls(const std::string& line,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = line.find(token);
  while (pos != std::string::npos) {
    std::size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(' &&
        freestanding_token(line, pos)) {
      hits.push_back(pos);
    }
    pos = line.find(token, pos + 1);
  }
  return hits;
}

/// Names declared as std::unordered_map/std::unordered_set in this file.
/// Token-scans `unordered_map<...> name` with balanced angle brackets;
/// declarations may span lines.
std::set<std::string> unordered_names(const MaskedSource& src) {
  std::string joined;
  for (const std::string& line : src.code) {
    joined += line;
    joined += '\n';
  }
  std::set<std::string> names;
  for (const char* kind : {"unordered_map", "unordered_set"}) {
    std::size_t pos = joined.find(kind);
    for (; pos != std::string::npos; pos = joined.find(kind, pos + 1)) {
      if (pos > 0 && ident_char(joined[pos - 1])) continue;
      std::size_t i = pos + std::string(kind).size();
      while (i < joined.size() && std::isspace(static_cast<unsigned char>(
                                      joined[i]))) {
        ++i;
      }
      if (i >= joined.size() || joined[i] != '<') continue;
      int depth = 0;
      for (; i < joined.size(); ++i) {
        if (joined[i] == '<') ++depth;
        if (joined[i] == '>') {
          // Treat >> as two closers (nested template arguments).
          if (--depth == 0) break;
        }
      }
      if (depth != 0) break;
      ++i;  // past the closing '>'
      // Optional cv/ref decoration, then the declared name.
      while (i < joined.size() &&
             (std::isspace(static_cast<unsigned char>(joined[i])) ||
              joined[i] == '&' || joined[i] == '*')) {
        ++i;
      }
      std::size_t name_begin = i;
      while (i < joined.size() && ident_char(joined[i])) ++i;
      if (i == name_begin) continue;
      const std::string name = joined.substr(name_begin, i - name_begin);
      while (i < joined.size() &&
             std::isspace(static_cast<unsigned char>(joined[i]))) {
        ++i;
      }
      if (i < joined.size() && (joined[i] == ';' || joined[i] == '=' ||
                                joined[i] == '{' || joined[i] == ',' ||
                                joined[i] == ')')) {
        names.insert(name);
      }
    }
  }
  return names;
}

void scan_unordered_iter(const MaskedSource& src,
                         const std::string& path,
                         std::vector<Finding>& out) {
  const std::set<std::string> names = unordered_names(src);
  if (names.empty()) return;
  static const std::regex range_for(
      R"(for\s*\([^():]*:\s*\(?\s*\*?\s*([A-Za-z_]\w*)\s*\))");
  static const std::regex begin_end(
      R"(([A-Za-z_]\w*)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\()");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), range_for);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      if (names.contains(name)) {
        out.push_back({path, static_cast<int>(i) + 1, "unordered-iter",
                       "range-for over unordered container '" + name +
                           "': iteration order depends on the stdlib hash; "
                           "use an ordered container or sorted keys"});
      }
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), begin_end);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      // `x == c.end()` / `x != c.end()` after find() is a membership
      // test, not a traversal — skip sentinel comparisons.
      std::size_t before = static_cast<std::size_t>(it->position(0));
      while (before > 0 && line[before - 1] == ' ') --before;
      if (before >= 2 && line[before - 1] == '=' &&
          (line[before - 2] == '=' || line[before - 2] == '!')) {
        continue;
      }
      if (names.contains(name)) {
        out.push_back({path, static_cast<int>(i) + 1, "unordered-iter",
                       "iterator over unordered container '" + name +
                           "': traversal order depends on the stdlib hash; "
                           "use an ordered container or sorted keys"});
      }
    }
  }
}

void scan_wall_clock(const MaskedSource& src, const std::string& path,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const char* token :
         {"system_clock", "steady_clock", "high_resolution_clock",
          "gettimeofday", "localtime", "gmtime"}) {
      const std::size_t pos = line.find(token);
      const std::size_t end = pos == std::string::npos
                                  ? std::string::npos
                                  : pos + std::string(token).size();
      if (pos != std::string::npos && freestanding_token(line, pos) &&
          (end >= line.size() || !ident_char(line[end]))) {
        out.push_back({path, static_cast<int>(i) + 1, "wall-clock",
                       std::string("wall-clock source '") + token +
                           "': simulated time must come from "
                           "sim::Simulator::now()"});
      }
    }
    for (const char* fn : {"time", "clock"}) {
      if (!find_calls(line, fn).empty()) {
        out.push_back({path, static_cast<int>(i) + 1, "wall-clock",
                       std::string("wall-clock call '") + fn +
                           "()': simulated time must come from "
                           "sim::Simulator::now()"});
      }
    }
  }
}

void scan_ambient_rng(const MaskedSource& src, const std::string& path,
                      std::vector<Finding>& out) {
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    for (const char* token : {"random_device", "mt19937", "drand48"}) {
      const std::size_t pos = line.find(token);
      if (pos != std::string::npos && freestanding_token(line, pos)) {
        out.push_back({path, static_cast<int>(i) + 1, "ambient-rng",
                       std::string("ambient randomness '") + token +
                           "': derive all randomness from a seeded "
                           "hero::Rng (common/rng)"});
      }
    }
    for (const char* fn : {"rand", "srand"}) {
      if (!find_calls(line, fn).empty()) {
        out.push_back({path, static_cast<int>(i) + 1, "ambient-rng",
                       std::string("ambient randomness '") + fn +
                           "()': derive all randomness from a seeded "
                           "hero::Rng (common/rng)"});
      }
    }
  }
}

void scan_float_equal(const MaskedSource& src, const std::string& path,
                      std::vector<Finding>& out) {
  static const std::regex lit_rhs(
      R"([=!]=\s*[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?)");
  static const std::regex lit_lhs(
      R"((?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?\s*[=!]=)");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    if (std::regex_search(line, lit_rhs) ||
        std::regex_search(line, lit_lhs)) {
      out.push_back({path, static_cast<int>(i) + 1, "float-equal",
                     "exact ==/!= against a floating-point literal: "
                     "compare with an epsilon or track integer state"});
    }
  }
}

void scan_iostream(const MaskedSource& src, const std::string& path,
                   std::vector<Finding>& out) {
  static const std::regex inc(R"(^\s*#\s*include\s*<iostream>)");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    if (std::regex_search(src.code[i], inc)) {
      out.push_back({path, static_cast<int>(i) + 1, "iostream",
                     "<iostream> in library code: log via common/log, "
                     "print from examples/bench drivers only"});
    }
  }
}

void scan_uninit_member(const MaskedSource& src, const std::string& path,
                        std::vector<Finding>& out) {
  // Scalar-ish member types: builtins, fixed-width ints, the repo's
  // numeric/id aliases, and raw pointers.
  static const std::regex member(
      R"(^\s*(?:mutable\s+)?()"
      R"((?:std::)?(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t)|)"
      R"(bool|char|short|int|long(?:\s+long)?|unsigned(?:\s+int|\s+long)?|)"
      R"(float|double|Time|Bytes|Bandwidth|[A-Za-z_][\w:]*Id|)"
      R"([A-Za-z_][\w:]*(?:<[\w:,\s*&]*>)?\s*\*+)"
      R"()\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*;\s*$)");
  // Only `struct` scopes are checked: classes establish invariants in
  // constructors, while structs are used as aggregates whose members leak
  // indeterminate values when left bare. `enum class` is not a class.
  static const std::regex struct_head(R"((?:^|[;{}\s])struct\s+[A-Za-z_]\w*)");
  static const std::regex skip_kw(
      R"(^\s*(?:using|typedef|friend|static|constexpr|inline|extern|return))");

  struct Scope {
    int depth = 0;      // brace depth of the struct body
    bool is_struct = false;
  };
  std::vector<Scope> scopes;
  int depth = 0;
  bool pending_struct = false;  // saw a struct head, waiting for its '{'

  for (std::size_t i = 0; i < src.code.size(); ++i) {
    const std::string& line = src.code[i];
    const bool head_here = std::regex_search(line, struct_head) &&
                           line.find(';') == std::string::npos &&
                           line.find("enum") == std::string::npos;

    // Member check happens at the struct body's own depth, before brace
    // bookkeeping for this line (members and braces rarely share a line).
    if (!scopes.empty() && scopes.back().is_struct &&
        depth == scopes.back().depth &&
        line.find('(') == std::string::npos &&
        line.find('=') == std::string::npos &&
        line.find('{') == std::string::npos &&
        !std::regex_search(line, skip_kw)) {
      std::smatch m;
      if (std::regex_match(line, m, member)) {
        out.push_back({path, static_cast<int>(i) + 1, "uninit-member",
                       "member '" + m[2].str() +
                           "' has no initializer: aggregate instances "
                           "inherit indeterminate values"});
      }
    }

    bool struct_opens = head_here || pending_struct;
    for (const char c : line) {
      if (c == '{') {
        ++depth;
        scopes.push_back({depth, struct_opens});
        struct_opens = false;
        pending_struct = false;
      } else if (c == '}') {
        if (!scopes.empty() && scopes.back().depth == depth) {
          scopes.pop_back();
        }
        --depth;
      }
    }
    if (head_here && struct_opens) pending_struct = true;
  }
}

}  // namespace

FileContext classify_path(const std::string& path) {
  FileContext ctx;
  auto contains = [&](const char* needle) {
    return path.find(needle) != std::string::npos;
  };
  ctx.library = contains("/src/") ||
                path.rfind("src/", 0) == 0;
  ctx.rng_module = contains("common/rng");
  return ctx;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 const FileContext& ctx) {
  const MaskedSource src = mask(content);
  const Suppressions sup = collect_suppressions(src);

  std::vector<Finding> raw;
  scan_unordered_iter(src, path, raw);
  scan_wall_clock(src, path, raw);
  if (!ctx.rng_module) scan_ambient_rng(src, path, raw);
  scan_float_equal(src, path, raw);
  if (ctx.library) scan_iostream(src, path, raw);
  scan_uninit_member(src, path, raw);

  std::vector<Finding> kept;
  for (Finding& f : raw) {
    if (!sup.covers(f.rule, f.line)) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

const std::vector<std::string>& rule_ids() { return kRuleIds; }

std::string to_json(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::string json = "{\n  \"count\": " + std::to_string(findings.size()) +
                     ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {\"file\": \"" + escape(f.file) +
            "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
            escape(f.rule) + "\", \"message\": \"" + escape(f.message) +
            "\"}";
  }
  json += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return json;
}

}  // namespace herolint
