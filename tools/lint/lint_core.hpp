// hero-lint core: determinism/correctness static analysis for the
// HeroServe sources.
//
// The whole stack is a deterministic discrete-event simulation; the
// planner (Alg. 1-2) and online scheduler (Eq. 16-18) are reproducible
// only while nothing in the hot path depends on hash order, wall clocks,
// or ambient randomness. hero-lint is a plain-text/token scanner (no
// libclang) that enforces those properties plus two generic correctness
// rules. Rules:
//
//   unordered-iter  iteration (range-for / .begin()/.end()) over a
//                   variable declared as std::unordered_map/set in the
//                   same file — event ordering and fair-share tie-breaks
//                   must not depend on the stdlib's hash function.
//   wall-clock      ambient time sources (system_clock, steady_clock,
//                   time(), clock(), gettimeofday) — simulated time comes
//                   from sim::Simulator::now().
//   ambient-rng     ambient randomness (rand, srand, random_device,
//                   mt19937, drand48) outside src/common/rng — all
//                   stochastic behaviour flows from a seeded hero::Rng.
//   float-equal     ==/!= against a floating-point literal — use an
//                   epsilon or integer state instead.
//   iostream        #include <iostream> in library code (src/) — library
//                   targets log through common/log, never global streams.
//   uninit-member   scalar/pointer data member without an initializer in
//                   a struct/class body — aggregate instances inherit
//                   indeterminate values.
//
// Suppressions: `// hero-lint: allow(rule-a, rule-b)` on the finding's
// line or the line directly above; `// hero-lint: allow-file(rule)`
// anywhere in the file suppresses the rule file-wide.
#pragma once

#include <string>
#include <vector>

namespace herolint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Per-file rule scoping derived from the path.
struct FileContext {
  bool library = false;     ///< under src/: library-only rules apply
  bool rng_module = false;  ///< src/common/rng*: ambient-rng exempt
};

/// Classify a path by repo conventions ("src/" => library code).
[[nodiscard]] FileContext classify_path(const std::string& path);

/// Lint one source file. `path` is used for reporting only; scoping comes
/// from `ctx`. Suppressed findings are dropped.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& content,
                                               const FileContext& ctx);

/// Stable list of every rule id.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Machine-readable report.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

}  // namespace herolint
