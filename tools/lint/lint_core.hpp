// hero-lint core: determinism/correctness static analysis for the
// HeroServe sources.
//
// The whole stack is a deterministic discrete-event simulation; the
// planner (Alg. 1-2) and online scheduler (Eq. 16-18) are reproducible
// only while nothing in the hot path depends on hash order, wall clocks,
// or ambient randomness — and physically meaningful only while every
// seconds/bytes/bandwidth value carries the dimension its variable
// claims. hero-lint is a plain-text/token scanner (no libclang): v1
// rules work line-by-line on comment-masked source; v2 rules run over a
// token stream plus a per-file symbol table of unit-typed locals
// (Time/Bytes/Bandwidth/Rate/Tokens/TokenRate/WorkUnits/WorkRate
// declarations), which lets them reason about value flow. Rule catalog:
//
//   ambient-rng     ambient randomness (rand, srand, random_device,
//                   mt19937, drand48) outside src/common/rng — all
//                   stochastic behaviour flows from a seeded hero::Rng.
//   float-equal     ==/!= against a floating-point literal — use an
//                   epsilon or integer state instead.
//   iostream        #include <iostream> in library code (src/) — library
//                   targets log through common/log, never global streams.
//   mixed-dimension-arith
//                   + / - / += / -= combining two unit-typed locals of
//                   different dimensions (e.g. `bytes + latency`): under
//                   the plain-double build this compiles and silently
//                   produces nonsense; under HERO_STRONG_UNITS it is a
//                   compile error. The lint catches it in both modes.
//   raw-unit-literal
//                   a unit-typed variable initialized or assigned from a
//                   bare "conversion-factor-shaped" literal expression —
//                   scientific notation or magnitude >= 1000 — with no
//                   units:: factor (e.g. `Bandwidth bw = 12.5e9;`).
//                   Spell the unit: `12.5 * units::GBps`. Human-scale
//                   base-unit values (`Time sla = 2.5;`) are accepted.
//   unconsumed-estimate
//                   a call to estimate_path(...) or .load(...) whose
//                   result is discarded (expression statement): both are
//                   pure queries, so a dropped return value is always a
//                   bug — usually a missing assignment.
//   uninit-member   scalar/pointer data member without an initializer in
//                   a struct/class body — aggregate instances inherit
//                   indeterminate values.
//   unordered-iter  iteration (range-for / .begin()/.end()) over a
//                   variable declared as std::unordered_map/set in the
//                   same file — event ordering and fair-share tie-breaks
//                   must not depend on the stdlib's hash function.
//   unordered-iter-to-output
//                   a range-for over an unordered container whose body
//                   emits into a trace/report sink (tracer spans or
//                   instants, counters, table rows, printf) — the
//                   emitted artifact's ordering would depend on the
//                   stdlib hash, breaking byte-identical reruns.
//   wall-clock      ambient time sources (system_clock, steady_clock,
//                   time(), clock(), gettimeofday) — simulated time comes
//                   from sim::Simulator::now().
//
// v3 adds whole-program rules over a ProjectIndex/CallGraph (see
// index.hpp and callgraph.hpp): `transitive-wall-clock`,
// `transitive-rng`, and `transitive-unordered-iter` flag nondeterminism
// sinks reachable from simulator dispatch across TU boundaries;
// `layer-violation` and `include-cycle` police the include graph against
// the declared layer DAG (tools/lint/layers.txt); `stale-suppression`
// flags allow() comments that no longer suppress anything. Their docs
// live in the shared rule catalogue below so --list-rules and the SARIF
// rules table cover both tiers.
//
// Suppressions: `// hero-lint: allow(rule-a, rule-b)` on the finding's
// line or the line directly above; `// hero-lint: allow-file(rule)`
// anywhere in the file suppresses the rule file-wide. Suppressed
// findings are retained in LintReport::suppressed so the CLI's --stats
// can account for every allow().
#pragma once

#include <string>
#include <vector>

#include "source_text.hpp"

namespace herolint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// Per-file rule scoping derived from the path.
struct FileContext {
  bool library = false;     ///< under src/: library-only rules apply
  bool rng_module = false;  ///< src/common/rng*: ambient-rng exempt
};

/// Classify a path by repo conventions ("src/" => library code).
[[nodiscard]] FileContext classify_path(const std::string& path);

/// Everything one file produced: the findings that survive suppression
/// and the ones an allow()/allow-file() swallowed (for --stats).
struct LintReport {
  std::vector<Finding> findings;
  std::vector<Finding> suppressed;
};

/// Lint one source file. `path` is used for reporting only; scoping comes
/// from `ctx`.
[[nodiscard]] LintReport lint_source_report(const std::string& path,
                                            const std::string& content,
                                            const FileContext& ctx);

/// The per-file rule pipeline with no suppression filtering: every raw
/// finding, sorted by (line, rule). The whole-program analyzer
/// (callgraph.hpp) builds on this — it partitions findings against the
/// file's suppression inventory itself and reuses the raw wall-clock /
/// ambient-rng / unordered-iter findings as call-graph sink markers.
[[nodiscard]] std::vector<Finding> raw_file_findings(
    const std::string& path, const MaskedSource& src,
    const std::vector<Token>& toks, const FileContext& ctx);

/// Back-compat wrapper: suppressed findings dropped.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& content,
                                               const FileContext& ctx);

/// Stable (sorted) list of every rule id.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// One-line summary for a rule id (empty for unknown ids) — the SARIF
/// rules table and --list-rules share it.
[[nodiscard]] std::string rule_summary(const std::string& rule);

/// Machine-readable report.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 report (one run, one result per finding) for code-scanning
/// uploads.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace herolint
