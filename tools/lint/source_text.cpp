#include "source_text.hpp"

#include <cctype>
#include <sstream>

namespace herolint {

MaskedSource mask(const std::string& content) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  MaskedSource out;
  std::string code_line, comment_line;
  State state = State::kCode;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back(std::move(code_line));
      out.comments.push_back(std::move(comment_line));
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          comment_line += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          comment_line += "/*";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
          comment_line += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
          comment_line += ' ';
        } else {
          code_line += c;
          comment_line += ' ';
        }
        break;
      case State::kLineComment:
        code_line += ' ';
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          comment_line += "*/";
          ++i;
        } else {
          code_line += ' ';
          comment_line += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          code_line += "  ";
          comment_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
          comment_line += ' ';
        } else {
          code_line += ' ';
          comment_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          code_line += "  ";
          comment_line += "  ";
          if (next != '\0' && next != '\n') ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
          comment_line += ' ';
        } else {
          code_line += ' ';
          comment_line += ' ';
        }
        break;
    }
  }
  out.code.push_back(std::move(code_line));
  out.comments.push_back(std::move(comment_line));
  return out;
}

namespace {

bool starts_number(const std::string& s, std::size_t i) {
  const char c = s[i];
  if (std::isdigit(static_cast<unsigned char>(c)) != 0) return true;
  return c == '.' && i + 1 < s.size() &&
         std::isdigit(static_cast<unsigned char>(s[i + 1])) != 0;
}

/// Parse a comma-separated rule list out of "...allow(rule-a, rule-b)...".
std::vector<std::string> parse_allow_list(const std::string& text,
                                          std::size_t open_paren) {
  std::vector<std::string> rules;
  const std::size_t close = text.find(')', open_paren);
  if (close == std::string::npos) return rules;
  std::string inside = text.substr(open_paren + 1, close - open_paren - 1);
  std::stringstream ss(inside);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) rules.push_back(rule.substr(b, e - b + 1));
  }
  return rules;
}

}  // namespace

std::vector<Token> tokenize(const MaskedSource& src) {
  static const char* kTwoCharPunct[] = {"::", "->", "==", "!=", "<=", ">=",
                                        "+=", "-=", "*=", "/=", "&&", "||",
                                        "<<", ">>"};
  std::vector<Token> toks;
  for (std::size_t li = 0; li < src.code.size(); ++li) {
    const std::string& s = src.code[li];
    const int line = static_cast<int>(li) + 1;
    std::size_t i = 0;
    while (i < s.size()) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++i;
        continue;
      }
      if (ident_char(c) && !starts_number(s, i)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        toks.push_back({Token::Kind::kIdent, s.substr(i, j - i), line});
        i = j;
        continue;
      }
      if (starts_number(s, i)) {
        std::size_t j = i;
        while (j < s.size() &&
               (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) {
          // Exponent sign belongs to the literal: 1e-9, 0x1p+3.
          if ((s[j] == 'e' || s[j] == 'E' || s[j] == 'p' || s[j] == 'P') &&
              j + 1 < s.size() && (s[j + 1] == '+' || s[j + 1] == '-')) {
            j += 2;
          } else {
            ++j;
          }
        }
        toks.push_back({Token::Kind::kNumber, s.substr(i, j - i), line});
        i = j;
        continue;
      }
      bool matched = false;
      for (const char* two : kTwoCharPunct) {
        if (s.compare(i, 2, two) == 0) {
          toks.push_back({Token::Kind::kPunct, two, line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
        ++i;
      }
    }
  }
  return toks;
}

Suppressions Suppressions::collect(const MaskedSource& src) {
  Suppressions sup;
  for (std::size_t i = 0; i < src.comments.size(); ++i) {
    const std::string& text = src.comments[i];
    const int line = static_cast<int>(i) + 1;
    std::size_t pos = text.find("hero-lint:");
    // A directive must start its comment: only comment punctuation and
    // whitespace before "hero-lint:". Prose that merely quotes the
    // syntax (docs, this file) is not a suppression site.
    if (pos != std::string::npos) {
      for (std::size_t k = 0; k < pos; ++k) {
        const char c = text[k];
        if (c != '/' && c != '*' && c != ' ' && c != '\t') {
          pos = std::string::npos;
          break;
        }
      }
    }
    if (pos != std::string::npos) {
      const std::size_t file_marker = text.find("allow-file(", pos);
      const std::size_t line_marker = text.find("allow(", pos);
      if (file_marker != std::string::npos) {
        for (const auto& r : parse_allow_list(text, file_marker + 10)) {
          sup.file_wide_[r].push_back(sup.sites_.size());
          sup.sites_.push_back({line, r, /*file_wide=*/true});
        }
      } else if (line_marker != std::string::npos) {
        for (const auto& r : parse_allow_list(text, line_marker + 5)) {
          sup.per_line_[{line, r}].push_back(sup.sites_.size());
          sup.sites_.push_back({line, r, /*file_wide=*/false});
        }
      }
    }
  }
  return sup;
}

bool Suppressions::consume(const std::string& rule, int line) {
  bool covered = false;
  auto fw = file_wide_.find(rule);
  if (fw != file_wide_.end()) {
    covered = true;
    for (std::size_t id : fw->second) used_.insert(id);
  }
  for (int l : {line, line - 1}) {
    auto it = per_line_.find({l, rule});
    if (it != per_line_.end()) {
      covered = true;
      for (std::size_t id : it->second) used_.insert(id);
    }
  }
  return covered;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool freestanding_token(const std::string& text, std::size_t pos) {
  if (pos == 0) return true;
  const char prev = text[pos - 1];
  if (ident_char(prev) || prev == '.') return false;
  if (prev == '>' && pos >= 2 && text[pos - 2] == '-') return false;
  return true;
}

std::vector<std::size_t> find_calls(const std::string& line,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = line.find(token);
  while (pos != std::string::npos) {
    std::size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(' &&
        freestanding_token(line, pos)) {
      hits.push_back(pos);
    }
    pos = line.find(token, pos + 1);
  }
  return hits;
}

std::set<std::string> unordered_names(const MaskedSource& src) {
  std::string joined;
  for (const std::string& line : src.code) {
    joined += line;
    joined += '\n';
  }
  std::set<std::string> names;
  for (const char* kind : {"unordered_map", "unordered_set"}) {
    std::size_t pos = joined.find(kind);
    for (; pos != std::string::npos; pos = joined.find(kind, pos + 1)) {
      if (pos > 0 && ident_char(joined[pos - 1])) continue;
      std::size_t i = pos + std::string(kind).size();
      while (i < joined.size() &&
             std::isspace(static_cast<unsigned char>(joined[i]))) {
        ++i;
      }
      if (i >= joined.size() || joined[i] != '<') continue;
      int depth = 0;
      for (; i < joined.size(); ++i) {
        if (joined[i] == '<') ++depth;
        if (joined[i] == '>') {
          // Treat >> as two closers (nested template arguments).
          if (--depth == 0) break;
        }
      }
      if (depth != 0) break;
      ++i;  // past the closing '>'
      // Optional cv/ref decoration, then the declared name.
      while (i < joined.size() &&
             (std::isspace(static_cast<unsigned char>(joined[i])) ||
              joined[i] == '&' || joined[i] == '*')) {
        ++i;
      }
      std::size_t name_begin = i;
      while (i < joined.size() && ident_char(joined[i])) ++i;
      if (i == name_begin) continue;
      const std::string name = joined.substr(name_begin, i - name_begin);
      while (i < joined.size() &&
             std::isspace(static_cast<unsigned char>(joined[i]))) {
        ++i;
      }
      if (i < joined.size() && (joined[i] == ';' || joined[i] == '=' ||
                                joined[i] == '{' || joined[i] == ',' ||
                                joined[i] == ')')) {
        names.insert(name);
      }
    }
  }
  return names;
}

}  // namespace herolint
