// hero-lint source-text layer: the representation every rule pass —
// per-file (lint_core) and whole-program (index/callgraph) — shares.
//
// A file is modeled three ways, all length-preserving so any match index
// is a valid (line, column) in the original file:
//
//   MaskedSource.code      comments and string/char-literal bodies blanked
//   MaskedSource.comments  everything but comment text blanked
//   Token stream           identifiers / numbers / punctuation with their
//                          1-based source line
//
// Suppressions (`// hero-lint: allow(rule)` / `allow-file(rule)`) live here
// too because both rule tiers consult the same inventory: per-file rules
// consume them first, project rules (transitive-*, layer-violation, ...)
// consume them second, and whatever is left unconsumed is what the
// stale-suppression rule reports.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace herolint {

/// Per-line code text and comment text, lengths identical to the input.
struct MaskedSource {
  std::vector<std::string> code;
  std::vector<std::string> comments;
};

/// Blank out comments/strings (into `code`) and non-comments (into
/// `comments`), preserving line structure and column positions.
[[nodiscard]] MaskedSource mask(const std::string& content);

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;  // 1-based
};

/// Tokenize masked code. Numbers keep suffixes/exponents glued
/// (1e-9, 0x1p+3, 100ULL); two-char punctuators (::, ->, +=, ...) are
/// single tokens.
[[nodiscard]] std::vector<Token> tokenize(const MaskedSource& src);

/// One `allow(rule)` / `allow-file(rule)` occurrence, addressable for
/// staleness reporting.
struct AllowSite {
  int line = 0;  ///< 1-based line of the comment
  std::string rule;
  bool file_wide = false;
};

/// The suppression inventory of one file, with usage tracking: `consume()`
/// both answers "is this finding suppressed?" and marks the matching
/// site(s) used, so unused sites can be reported as stale afterwards.
class Suppressions {
 public:
  /// Harvest directives from comment text. A directive must start its
  /// comment (`// hero-lint: allow(x)`); prose that merely quotes the
  /// syntax mid-sentence is not a site.
  [[nodiscard]] static Suppressions collect(const MaskedSource& src);

  /// True when an allow-file(rule), or an allow(rule) on `line`/`line-1`,
  /// covers the finding; every matching site is marked used.
  bool consume(const std::string& rule, int line);

  /// Suppression comments in file order (line, then rule).
  [[nodiscard]] const std::vector<AllowSite>& sites() const { return sites_; }

  /// True when sites_[i] has consumed at least one finding.
  [[nodiscard]] bool used(std::size_t i) const { return used_.contains(i); }

 private:
  std::vector<AllowSite> sites_;
  // Lookup indexes into sites_: rule -> site ids (file-wide), and
  // (line, rule) -> site ids (per-line).
  std::map<std::string, std::vector<std::size_t>> file_wide_;
  std::map<std::pair<int, std::string>, std::vector<std::size_t>> per_line_;
  std::set<std::size_t> used_;
};

/// True for [A-Za-z0-9_].
[[nodiscard]] bool ident_char(char c);

/// True when `text[pos]` starts a freestanding token: not a member access
/// (`.x`, `->x`), not the tail of a longer identifier. `::` prefixes are
/// allowed (std::time must be flagged).
[[nodiscard]] bool freestanding_token(const std::string& text,
                                      std::size_t pos);

/// Occurrences of `token` followed (after spaces) by '(' that are real
/// freestanding calls.
[[nodiscard]] std::vector<std::size_t> find_calls(const std::string& line,
                                                  const std::string& token);

/// Names declared as std::unordered_map/std::unordered_set in this file.
[[nodiscard]] std::set<std::string> unordered_names(const MaskedSource& src);

}  // namespace herolint
